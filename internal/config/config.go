// Package config defines the simulated architecture (Table 9) and the core
// configurations the paper evaluates (Table 11): the 2D baseline, TSV3D,
// iso-layer M3D, naive and compensated hetero-layer M3D, the aggressive
// hetero design, and the multicore variants.
package config

import (
	"context"
	"fmt"
	"math"

	"vertical3d/internal/core"
	"vertical3d/internal/guard"
	"vertical3d/internal/logic3d"
	"vertical3d/internal/parallel"
	"vertical3d/internal/tech"
)

// CacheParams describes one cache level.
type CacheParams struct {
	SizeKB       int
	Assoc        int
	LineBytes    int
	RTCycles     int // round-trip latency in core cycles
	WriteBack    bool
	BanksPerCore int
}

// check records the cache-geometry invariants into c under path: positive
// size/associativity/latency, a power-of-two line size, and a power-of-two
// set count — the address-slicing bit math in mem depends on the last two.
func (cp CacheParams) check(c *guard.Checker, path string) {
	c.PositiveInt(path+".SizeKB", cp.SizeKB)
	c.PositiveInt(path+".Assoc", cp.Assoc)
	c.PowerOfTwo(path+".LineBytes", cp.LineBytes)
	c.PositiveInt(path+".RTCycles", cp.RTCycles)
	c.NonNegativeInt(path+".BanksPerCore", cp.BanksPerCore)
	if cp.SizeKB > 0 && cp.Assoc > 0 && cp.LineBytes > 0 {
		bytes := cp.SizeKB * 1024
		if bytes%(cp.LineBytes*cp.Assoc) != 0 {
			c.Violatef(path, "%dKB does not divide into %d-way sets of %dB lines", cp.SizeKB, cp.Assoc, cp.LineBytes)
		} else {
			c.PowerOfTwo(path+".Sets", bytes/(cp.LineBytes*cp.Assoc))
		}
	}
}

// CoreParams is the microarchitecture of Table 9.
type CoreParams struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	CommitWidth   int

	ROBSize   int
	IQSize    int
	LQSize    int
	SQSize    int
	IntRF     int
	FPRF      int
	RASSize   int
	BTBSize   int
	BTBAssoc  int
	PredTable int // entries in selector/local/global tables

	NumALU    int
	NumMulDiv int
	NumLSU    int
	NumFPU    int

	ALULatency   int
	MulLatency   int
	DivLatency   int
	LSULatency   int
	FPAddLatency int
	FPMulLatency int
	FPDivLatency int

	IL1, DL1, L2, L3 CacheParams

	// LoadToUseCycles is the load-to-use path length; 4 cycles in 2D,
	// one less in all 3D designs (Section 6).
	LoadToUseCycles int

	// BranchPenaltyCycles is the branch-misprediction notification path;
	// 14 cycles in 2D, two fewer in 3D designs.
	BranchPenaltyCycles int

	// DRAMLatencyNs is the round-trip latency after an L3 miss, in
	// nanoseconds — fixed in wall-clock time, so faster cores see more
	// cycles of memory latency.
	DRAMLatencyNs float64

	// ComplexDecodeExtra is the extra decode occupancy of complex
	// instructions: hetero-layer M3D places the complex decoder and µcode
	// ROM in the slower top layer at the cost of one cycle (Section 4.1.2).
	ComplexDecodeExtra int
}

// Validate checks the microarchitecture for consistency: positive pipeline
// widths, queue and table sizes, functional-unit counts and latencies;
// power-of-two cache geometry at every level; and non-decreasing round-trip
// latencies down the hierarchy (DL1 <= L2 <= L3). All violations are
// reported together as guard.Violations with per-field paths.
func (cp CoreParams) Validate() error {
	c := guard.New("config.CoreParams")
	c.PositiveInt("FetchWidth", cp.FetchWidth)
	c.PositiveInt("DispatchWidth", cp.DispatchWidth)
	c.PositiveInt("IssueWidth", cp.IssueWidth)
	c.PositiveInt("CommitWidth", cp.CommitWidth)
	c.PositiveInt("ROBSize", cp.ROBSize)
	c.PositiveInt("IQSize", cp.IQSize)
	c.PositiveInt("LQSize", cp.LQSize)
	c.PositiveInt("SQSize", cp.SQSize)
	c.PositiveInt("IntRF", cp.IntRF)
	c.PositiveInt("FPRF", cp.FPRF)
	c.PositiveInt("RASSize", cp.RASSize)
	c.PositiveInt("BTBSize", cp.BTBSize)
	c.PositiveInt("BTBAssoc", cp.BTBAssoc)
	c.PositiveInt("PredTable", cp.PredTable)
	c.PositiveInt("NumALU", cp.NumALU)
	c.PositiveInt("NumMulDiv", cp.NumMulDiv)
	c.PositiveInt("NumLSU", cp.NumLSU)
	c.PositiveInt("NumFPU", cp.NumFPU)
	c.PositiveInt("ALULatency", cp.ALULatency)
	c.PositiveInt("MulLatency", cp.MulLatency)
	c.PositiveInt("DivLatency", cp.DivLatency)
	c.PositiveInt("LSULatency", cp.LSULatency)
	c.PositiveInt("FPAddLatency", cp.FPAddLatency)
	c.PositiveInt("FPMulLatency", cp.FPMulLatency)
	c.PositiveInt("FPDivLatency", cp.FPDivLatency)
	cp.IL1.check(c, "IL1")
	cp.DL1.check(c, "DL1")
	cp.L2.check(c, "L2")
	cp.L3.check(c, "L3")
	c.NonDecreasing("RTCycles", float64(cp.DL1.RTCycles), float64(cp.L2.RTCycles), float64(cp.L3.RTCycles))
	c.PositiveInt("LoadToUseCycles", cp.LoadToUseCycles)
	c.PositiveInt("BranchPenaltyCycles", cp.BranchPenaltyCycles)
	c.Positive("DRAMLatencyNs", cp.DRAMLatencyNs)
	c.NonNegativeInt("ComplexDecodeExtra", cp.ComplexDecodeExtra)
	return c.Err()
}

// DefaultCore returns the Table 9 architecture.
func DefaultCore() CoreParams {
	return CoreParams{
		FetchWidth:    4,
		DispatchWidth: 4,
		IssueWidth:    6,
		CommitWidth:   4,

		ROBSize:   192,
		IQSize:    84,
		LQSize:    72,
		SQSize:    56,
		IntRF:     160,
		FPRF:      160,
		RASSize:   32,
		BTBSize:   4096,
		BTBAssoc:  4,
		PredTable: 4096,

		NumALU:    4,
		NumMulDiv: 2,
		NumLSU:    2,
		NumFPU:    2,

		ALULatency:   1,
		MulLatency:   2,
		DivLatency:   4,
		LSULatency:   1,
		FPAddLatency: 2,
		FPMulLatency: 4,
		FPDivLatency: 8,

		IL1: CacheParams{SizeKB: 32, Assoc: 4, LineBytes: 32, RTCycles: 3, BanksPerCore: 4},
		DL1: CacheParams{SizeKB: 32, Assoc: 8, LineBytes: 32, RTCycles: 4, WriteBack: true, BanksPerCore: 8},
		L2:  CacheParams{SizeKB: 256, Assoc: 8, LineBytes: 64, RTCycles: 10, WriteBack: true, BanksPerCore: 8},
		L3:  CacheParams{SizeKB: 2048, Assoc: 16, LineBytes: 64, RTCycles: 32, WriteBack: true},

		LoadToUseCycles:     4,
		BranchPenaltyCycles: 14,
		DRAMLatencyNs:       50,
	}
}

// Design identifies one of the evaluated core configurations.
type Design int

const (
	// Base is the 2D baseline core.
	Base Design = iota
	// TSV3D is the conventional die-stacked 3D core: same frequency as
	// Base, but with the shortened 3D critical paths.
	TSV3D
	// M3DIso is the iso-layer (same-performance layers) M3D core.
	M3DIso
	// M3DHetNaive is the hetero-layer core without the paper's
	// countermeasures: iso design slowed by the AES-block-derived 9%.
	M3DHetNaive
	// M3DHet is the paper's compensated hetero-layer design.
	M3DHet
	// M3DHetAgg is the aggressive hetero design whose frequency is limited
	// only by the traditionally critical structures (IQ).
	M3DHetAgg
	// M3DHetLP is M3D-Het with a low-power (FDSOI) top layer, feasible when
	// iso-performance layers are manufacturable: same performance as
	// M3D-Het, further energy savings (Section 7.1.2).
	M3DHetLP
	// M3DIsoAgg is the aggressive iso-layer design of Section 6.1, limited
	// only by the traditional frequency-critical structures. The paper
	// defines it but does not evaluate it "due to space limits".
	M3DIsoAgg
)

// String returns the configuration name used in the figures.
func (d Design) String() string {
	switch d {
	case Base:
		return "Base"
	case TSV3D:
		return "TSV3D"
	case M3DIso:
		return "M3D-Iso"
	case M3DHetNaive:
		return "M3D-HetNaive"
	case M3DHet:
		return "M3D-Het"
	case M3DHetAgg:
		return "M3D-HetAgg"
	case M3DHetLP:
		return "M3D-Het-LP"
	case M3DIsoAgg:
		return "M3D-IsoAgg"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// SingleCoreDesigns lists the designs of Figures 6-8 in plot order.
func SingleCoreDesigns() []Design {
	return []Design{Base, TSV3D, M3DIso, M3DHetNaive, M3DHet, M3DHetAgg}
}

// Is3D reports whether the design benefits from the shortened load-to-use
// and branch-misprediction paths (all stacked designs do, including TSV3D).
func (d Design) Is3D() bool { return d != Base }

// Config is a fully derived core configuration.
type Config struct {
	Name   string
	Design Design

	FreqGHz float64
	Vdd     float64

	Core CoreParams

	// EnergyFactors scales the per-category energies relative to Base.
	EnergyFactors EnergyFactors
}

// EnergyFactors are multiplicative per-category energy scale factors
// relative to the 2D baseline, derived from the partition studies.
type EnergyFactors struct {
	SRAM    float64 // storage-structure access energy (Tables 6/8)
	Logic   float64 // logic-stage switching energy (Section 3.1)
	Clock   float64 // clock-tree power (Section 3.3 / [42])
	Wire    float64 // semi-global/global interconnect energy (footprint)
	Leakage float64 // leakage power (unchanged by partitioning)
}

// BaseEnergyFactors returns all-ones factors.
func BaseEnergyFactors() EnergyFactors {
	return EnergyFactors{SRAM: 1, Logic: 1, Clock: 1, Wire: 1, Leakage: 1}
}

// check records the factor invariants into c: every per-category factor must
// be finite and strictly positive (a zero factor would silently erase an
// energy category from every figure).
func (f EnergyFactors) check(c *guard.Checker, path string) {
	c.Positive(path+".SRAM", f.SRAM)
	c.Positive(path+".Logic", f.Logic)
	c.Positive(path+".Clock", f.Clock)
	c.Positive(path+".Wire", f.Wire)
	c.Positive(path+".Leakage", f.Leakage)
}

// Validate checks a derived configuration end to end: a positive frequency
// and supply voltage, positive energy factors, and a consistent core
// microarchitecture. Derive runs this on every configuration it emits, so a
// miscalibrated partition study cannot hand the simulator a zero-frequency
// or NaN-voltage design.
func (c Config) Validate() error {
	ck := guard.New("config." + c.Name)
	ck.Positive("FreqGHz", c.FreqGHz)
	ck.Positive("Vdd", c.Vdd)
	c.EnergyFactors.check(ck, "EnergyFactors")
	if err := c.Core.Validate(); err != nil {
		if vs, ok := guard.AsViolations(err); ok {
			for _, v := range vs {
				ck.Violatef("Core", "%s: %s", v.Path, v.Msg)
			}
		} else {
			ck.Violatef("Core", "%v", err)
		}
	}
	return ck.Err()
}

// Suite holds every single-core configuration plus the inputs used to
// derive them, so experiments can report the derivation.
type Suite struct {
	Node *tech.Node

	BaseCycleTime float64 // seconds
	Configs       map[Design]Config

	IsoChoices    []core.Choice
	HeteroChoices []core.Choice
	TSVChoices    []core.Choice

	MinIsoReduction    float64
	MinHeteroReduction float64
	IQHeteroReduction  float64
}

// cycleOverhead is the latch/skew margin added on top of the slowest
// structure's access time to form the cycle time.
const cycleOverhead = 1.12

// naiveHeteroSlowdown is the 9% frequency loss Shi et al. [45] measured on
// an AES block with an uncompensated slow top layer.
const naiveHeteroSlowdown = 0.09

// Derive builds the full configuration suite from the partition studies at
// the given node, following Section 6.1: the baseline cycle time comes from
// the register file access; each 3D design's frequency comes from the
// smallest cycle-critical latency reduction of its partition table.
func Derive(n *tech.Node) (*Suite, error) {
	if n == nil {
		return nil, fmt.Errorf("config: nil tech node")
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	// The three partition studies are independent; run them concurrently on
	// the worker pool. Each SelectAll fans out over the catalog itself, and
	// the memoized sram model cache deduplicates the shared 2D baselines.
	studies := []struct {
		mode core.Mode
		via  tech.Via
	}{
		{core.IsoLayer, tech.MIV()},
		{core.HeteroLayer, tech.MIV()},
		{core.IsoLayer, tech.TSVAggressive()},
	}
	selected, err := parallel.Map(context.Background(), parallel.Default(), len(studies),
		func(_ context.Context, i int) ([]core.Choice, error) {
			return core.SelectAll(n, studies[i].mode, studies[i].via)
		})
	if err != nil {
		return nil, err
	}
	iso, het, tsv := selected[0], selected[1], selected[2]

	var rfAccess float64
	for _, c := range iso {
		if c.Structure.Spec.Name == "RF" {
			rfAccess = c.Base.AccessTime
		}
	}
	if rfAccess <= 0 {
		return nil, fmt.Errorf("config: could not locate the RF baseline access time")
	}

	s := &Suite{
		Node:          n,
		BaseCycleTime: rfAccess * cycleOverhead,
		Configs:       map[Design]Config{},
		IsoChoices:    iso,
		HeteroChoices: het,
		TSVChoices:    tsv,
	}
	// Frequency limiters: among cycle-critical structures, only those near
	// the cycle ceiling (within 60% of the slowest access) pin the clock.
	const nearFrac = 0.6
	s.MinIsoReduction = core.FrequencyLimitingReduction(iso, nearFrac)
	s.MinHeteroReduction = core.FrequencyLimitingReduction(het, nearFrac)

	// The aggressive design is limited only by the traditional cycle-time
	// bottlenecks: the register file and the ALU+bypass loop (Section 6.1).
	rfHet, err := core.ReductionFor(het, "RF")
	if err != nil {
		return nil, err
	}
	alu, err := logic3d.ALUBypass(n, DefaultCore().NumALU)
	if err != nil {
		return nil, err
	}
	aluRed := 1 - 1/(1+alu.FreqGain)
	s.IQHeteroReduction = math.Min(rfHet.Latency, aluRed)

	fBase := 1 / s.BaseCycleTime / 1e9
	fIso := fBase / (1 - s.MinIsoReduction)
	fHet := fBase / (1 - s.MinHeteroReduction)
	fHetAgg := fBase / (1 - s.IQHeteroReduction)
	fHetNaive := fIso * (1 - naiveHeteroSlowdown)

	base := DefaultCore()
	threeD := base
	threeD.LoadToUseCycles = base.LoadToUseCycles - 1
	threeD.BranchPenaltyCycles = base.BranchPenaltyCycles - 2
	heteroCore := threeD
	heteroCore.ComplexDecodeExtra = logic3d.HeteroDecodePlan().ComplexExtraCycles

	// Clock factors: the folded core's clock tree covers half the footprint
	// (half the wire capacitance) and additionally saves 25% of switching
	// power [42]; TSV3D folds too but with smaller array-side benefits.
	isoFactors := energyFactorsFrom(iso, 0.375, 0.90)
	hetFactors := energyFactorsFrom(het, 0.375, 0.90)
	tsvFactors := energyFactorsFrom(tsv, 0.65, 0.95)

	s.Configs[Base] = Config{Name: Base.String(), Design: Base,
		FreqGHz: fBase, Vdd: n.Vdd, Core: base, EnergyFactors: BaseEnergyFactors()}
	s.Configs[TSV3D] = Config{Name: TSV3D.String(), Design: TSV3D,
		FreqGHz: fBase, Vdd: n.Vdd, Core: threeD, EnergyFactors: tsvFactors}
	s.Configs[M3DIso] = Config{Name: M3DIso.String(), Design: M3DIso,
		FreqGHz: fIso, Vdd: n.Vdd, Core: threeD, EnergyFactors: isoFactors}
	s.Configs[M3DHetNaive] = Config{Name: M3DHetNaive.String(), Design: M3DHetNaive,
		FreqGHz: fHetNaive, Vdd: n.Vdd, Core: heteroCore, EnergyFactors: isoFactors}
	s.Configs[M3DHet] = Config{Name: M3DHet.String(), Design: M3DHet,
		FreqGHz: fHet, Vdd: n.Vdd, Core: heteroCore, EnergyFactors: hetFactors}
	s.Configs[M3DHetAgg] = Config{Name: M3DHetAgg.String(), Design: M3DHetAgg,
		FreqGHz: fHetAgg, Vdd: n.Vdd, Core: heteroCore, EnergyFactors: hetFactors}
	s.Configs[M3DHetLP] = Config{Name: M3DHetLP.String(), Design: M3DHetLP,
		FreqGHz: fHet, Vdd: n.Vdd, Core: heteroCore,
		EnergyFactors: lpTopLayerFactors(hetFactors, 1-hetFrac)}

	// M3D-IsoAgg: iso layers, frequency limited by the traditional
	// bottlenecks only (RF and the ALU+bypass loop).
	rfIso, err := core.ReductionFor(iso, "RF")
	if err != nil {
		return nil, err
	}
	fIsoAgg := fBase / (1 - math.Min(rfIso.Latency, aluRed))
	s.Configs[M3DIsoAgg] = Config{Name: M3DIsoAgg.String(), Design: M3DIsoAgg,
		FreqGHz: fIsoAgg, Vdd: n.Vdd, Core: threeD, EnergyFactors: isoFactors}

	// Every derived configuration must be internally consistent before the
	// simulator sees it; a miscalibrated partition study fails here with the
	// offending fields named rather than as a corrupt figure downstream.
	for _, d := range []Design{Base, TSV3D, M3DIso, M3DHetNaive, M3DHet, M3DHetAgg, M3DHetLP, M3DIsoAgg} {
		if err := s.Configs[d].Validate(); err != nil {
			return nil, fmt.Errorf("config: derived suite is inconsistent: %w", err)
		}
	}
	return s, nil
}

// hetFrac is the bottom layer's share of the core's switching activity.
const hetFrac = 0.55

// lpTopLayerFactors applies the Section 7.1.2 scenario to a hetero design's
// factors: the top layer (topShare of the activity) is built in a low-power
// FDSOI process, cutting its dynamic energy and leakage per
// tech.FDSOILowPower while the bottom HP layer keeps the performance.
func lpTopLayerFactors(f EnergyFactors, topShare float64) EnergyFactors {
	dyn := (1 - topShare) + topShare*tech.FDSOILowPower.DynamicEnergyFactor()
	leak := (1 - topShare) + topShare*tech.FDSOILowPower.LeakageFactor()
	return EnergyFactors{
		SRAM:    f.SRAM * dyn,
		Logic:   f.Logic * dyn,
		Clock:   f.Clock * dyn,
		Wire:    f.Wire * dyn,
		Leakage: f.Leakage * leak,
	}
}

// energyFactorsFrom derives the per-category factors: the SRAM factor is the
// access-weighted mean of the per-structure energy reductions; clock and
// wire factors follow the footprint halving plus the 25% clock switching
// reduction of [42]; the logic factor comes from the ALU study.
func energyFactorsFrom(choices []core.Choice, clockFactor, logicFactor float64) EnergyFactors {
	// Weight the frequently accessed structures more heavily.
	weights := map[string]float64{
		"RF": 3.0, "IQ": 2.5, "SQ": 1.0, "LQ": 1.0, "RAT": 2.0,
		"BPT": 1.5, "BTB": 1.5, "DTLB": 1.0, "ITLB": 1.0,
		"IL1": 2.5, "DL1": 2.5, "L2": 0.8,
	}
	var num, den float64
	minFoot := 1.0
	for _, c := range choices {
		w := weights[c.Structure.Spec.Name]
		num += w * (1 - c.Reduction.Energy)
		den += w
		if f := 1 - c.Reduction.Footprint; f < minFoot {
			minFoot = f
		}
	}
	sram := 1.0
	if den > 0 {
		sram = num / den
	}
	// Interconnect energy scales with the core's linear dimension; the
	// folded core has roughly half the footprint.
	avgFoot := 0.0
	for _, c := range choices {
		avgFoot += 1 - c.Reduction.Footprint
	}
	avgFoot /= float64(len(choices))
	wireFactor := 0.08 + avgFoot // linear with footprint plus a small fixed part
	return EnergyFactors{
		SRAM:    sram,
		Logic:   logicFactor,
		Clock:   clockFactor,
		Wire:    wireFactor,
		Leakage: 1.0,
	}
}

// MulticoreDesign identifies the multicore configurations of Figures 9-10.
type MulticoreDesign int

const (
	// MCBase is four 2D baseline cores with private L2s.
	MCBase MulticoreDesign = iota
	// MCTSV3D is four TSV3D cores, pairs sharing L2s and router stops.
	MCTSV3D
	// MCHet is four M3D-Het cores, pairs sharing L2s and router stops.
	MCHet
	// MCHetW widens the M3D-Het core to issue width 8 at Base frequency.
	MCHetW
	// MCHet2X runs eight M3D-Het cores at Base frequency and reduced
	// voltage, matching the 4-core Base power budget.
	MCHet2X
)

// String returns the figure label.
func (d MulticoreDesign) String() string {
	switch d {
	case MCBase:
		return "Base"
	case MCTSV3D:
		return "TSV3D"
	case MCHet:
		return "M3D-Het"
	case MCHetW:
		return "M3D-Het-W"
	case MCHet2X:
		return "M3D-Het-2X"
	default:
		return fmt.Sprintf("MulticoreDesign(%d)", int(d))
	}
}

// MulticoreDesigns lists the designs of Figures 9-10 in plot order.
func MulticoreDesigns() []MulticoreDesign {
	return []MulticoreDesign{MCBase, MCTSV3D, MCHet, MCHetW, MCHet2X}
}

// MCConfig is a multicore configuration.
type MCConfig struct {
	Name     string
	Design   MulticoreDesign
	Cores    int
	PerCore  Config
	SharedL2 bool // pairs of cores share L2s and a router stop (Figure 4)

	// RouterHopCycles is the per-hop NoC latency; sharing router stops in
	// the folded designs halves the inter-router distance (Section 3.1).
	RouterHopCycles int
}

// DeriveMulticore builds the Figure 9/10 configurations from the single-core
// suite, following Section 6.1: M3D-Het-W sets Base frequency and widens
// issue to 8; M3D-Het-2X sets Base frequency, drops Vdd by 50mV, and doubles
// the core count at roughly the 4-core Base power budget.
func DeriveMulticore(s *Suite) map[MulticoreDesign]MCConfig {
	base := s.Configs[Base]
	het := s.Configs[M3DHet]
	tsv := s.Configs[TSV3D]

	wide := het
	wide.Name = MCHetW.String()
	wide.FreqGHz = base.FreqGHz
	wide.Core.IssueWidth = 8
	wide.Core.DispatchWidth = 5
	wide.Core.CommitWidth = 5

	twoX := het
	twoX.Name = MCHet2X.String()
	twoX.FreqGHz = base.FreqGHz
	twoX.Vdd = base.Vdd - 0.05

	return map[MulticoreDesign]MCConfig{
		MCBase:  {Name: MCBase.String(), Design: MCBase, Cores: 4, PerCore: base, RouterHopCycles: 4},
		MCTSV3D: {Name: MCTSV3D.String(), Design: MCTSV3D, Cores: 4, PerCore: tsv, SharedL2: true, RouterHopCycles: 2},
		MCHet:   {Name: MCHet.String(), Design: MCHet, Cores: 4, PerCore: het, SharedL2: true, RouterHopCycles: 2},
		MCHetW:  {Name: MCHetW.String(), Design: MCHetW, Cores: 4, PerCore: wide, SharedL2: true, RouterHopCycles: 2},
		MCHet2X: {Name: MCHet2X.String(), Design: MCHet2X, Cores: 8, PerCore: twoX, SharedL2: true, RouterHopCycles: 2},
	}
}
