package shutdown

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func waitDone(t *testing.T, ctx context.Context) {
	t.Helper()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after signal")
	}
}

func TestFirstSignalCancelsContext(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	h := Install(context.Background(), WithLog(func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}))
	defer h.Stop()

	if h.Triggered() {
		t.Fatal("triggered before any signal")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitDone(t, h.Context())
	if !h.Triggered() {
		t.Fatal("signal arrived but Triggered() is false")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 || !strings.Contains(lines[0], "draining") {
		t.Fatalf("first-signal log = %q", lines)
	}
}

func TestExitCodeMapsInterruptTo130(t *testing.T) {
	h := Install(context.Background())
	defer h.Stop()

	// Before any signal the pipeline's own status passes through.
	for _, code := range []int{0, 1, 2} {
		if got := h.ExitCode(code); got != code {
			t.Fatalf("ExitCode(%d) = %d before signal", code, got)
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitDone(t, h.Context())
	// After an interrupt every status collapses to 130.
	for _, code := range []int{0, 1, 2} {
		if got := h.ExitCode(code); got != ExitInterrupted {
			t.Fatalf("ExitCode(%d) = %d after signal, want %d", code, got, ExitInterrupted)
		}
	}
}

func TestSecondSignalForceExits(t *testing.T) {
	exited := make(chan int, 1)
	h := Install(context.Background(), withForceExit(func(code int) {
		exited <- code
	}))
	defer h.Stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitDone(t, h.Context())
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != ExitInterrupted {
			t.Fatalf("force-exit code = %d, want %d", code, ExitInterrupted)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second signal did not force-exit")
	}
}

func TestStopWithoutSignalIsClean(t *testing.T) {
	h := Install(context.Background())
	h.Stop()
	h.Stop() // idempotent
	if h.Triggered() {
		t.Fatal("Stop marked the handler as triggered")
	}
	if got := h.ExitCode(3); got != 3 {
		t.Fatalf("ExitCode(3) = %d after clean stop", got)
	}
	select {
	case <-h.Context().Done():
	default:
		t.Fatal("Stop did not cancel the context")
	}
}

func TestParentCancellationReleasesHandler(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	h := Install(parent)
	cancel()
	waitDone(t, h.Context())
	h.Stop() // must not hang even though no signal ever arrived
	if h.Triggered() {
		t.Fatal("parent cancellation misreported as a signal")
	}
}
