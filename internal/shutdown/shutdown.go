// Package shutdown is the graceful-termination layer shared by the
// command-line binaries. Install hooks SIGINT and SIGTERM: the first
// signal cancels the returned context so worker pools stop dispatching
// new sweep cells, drain in-flight work, and flush journals; a second
// signal force-exits immediately for operators who do not want to wait
// for the drain.
//
// The conventional exit status for an interrupted-but-cleanly-drained
// run is ExitInterrupted (130 = 128+SIGINT), which Handler.ExitCode
// applies on top of whatever status the drained pipeline produced.
package shutdown

import (
	"context"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
)

// ExitInterrupted is the process exit status for a run that was
// interrupted by SIGINT/SIGTERM and drained cleanly: 128 + SIGINT(2),
// the shell convention for "killed by signal 2".
const ExitInterrupted = 130

// Handler owns the signal subscription and the cancellation it drives.
type Handler struct {
	ctx       context.Context
	cancel    context.CancelFunc
	ch        chan os.Signal
	quit      chan struct{}
	stopOnce  atomic.Bool
	done      chan struct{}
	triggered atomic.Bool

	// seams for tests
	logf      func(format string, args ...any)
	forceExit func(code int)
}

// Option customises an installed handler.
type Option func(*Handler)

// WithLog routes the handler's progress lines ("interrupt received,
// draining...") to fn instead of discarding them.
func WithLog(fn func(format string, args ...any)) Option {
	return func(h *Handler) { h.logf = fn }
}

// WithForceExit replaces os.Exit for the second-signal path. This is a
// documented test seam: the serving-layer drain tests install a recording
// function and deliver two real signals to the test process to prove the
// second one bypasses the drain. Production callers must not use it.
func WithForceExit(fn func(code int)) Option {
	return func(h *Handler) { h.forceExit = fn }
}

// withForceExit is the historical unexported spelling (this package's own
// tests predate the export).
func withForceExit(fn func(code int)) Option { return WithForceExit(fn) }

// Install subscribes to SIGINT/SIGTERM and returns a handler whose
// Context is cancelled on the first signal. The caller should run its
// sweeps with h.Context() and exit with h.ExitCode(status).
func Install(parent context.Context, opts ...Option) *Handler {
	ctx, cancel := context.WithCancel(parent)
	h := &Handler{
		ctx:       ctx,
		cancel:    cancel,
		ch:        make(chan os.Signal, 2),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		logf:      func(string, ...any) {},
		forceExit: os.Exit,
	}
	for _, o := range opts {
		o(h)
	}
	signal.Notify(h.ch, syscall.SIGINT, syscall.SIGTERM)
	go h.loop()
	return h
}

func (h *Handler) loop() {
	defer close(h.done)
	select {
	case sig := <-h.ch:
		h.triggered.Store(true)
		h.logf("shutdown: %v received: cancelling dispatch, draining in-flight cells (signal again to force-quit)", sig)
		h.cancel()
	case <-h.quit:
		return // Stop called; no signal arrived
	case <-h.ctx.Done():
		return // parent context cancelled underneath us
	}
	// After the first signal, a second one force-exits without draining.
	select {
	case sig := <-h.ch:
		h.logf("shutdown: second %v: exiting immediately without draining", sig)
		h.forceExit(ExitInterrupted)
	case <-h.quit:
		// Stop tearing the handler down after the drain.
	}
}

// Context is the run context: cancelled on the first SIGINT/SIGTERM.
func (h *Handler) Context() context.Context { return h.ctx }

// Triggered reports whether a shutdown signal arrived.
func (h *Handler) Triggered() bool { return h.triggered.Load() }

// ExitCode maps the pipeline's own exit status onto the process exit
// status: an interrupted run exits ExitInterrupted regardless of how
// much of the sweep completed, so scripts can distinguish "operator
// stopped it" from "it failed" (and resume from the journal).
func (h *Handler) ExitCode(code int) int {
	if h.Triggered() {
		return ExitInterrupted
	}
	return code
}

// Stop unsubscribes from signals and releases the handler's goroutine.
// Safe to call multiple times; typically deferred right after Install.
func (h *Handler) Stop() {
	signal.Stop(h.ch)
	if h.stopOnce.CompareAndSwap(false, true) {
		close(h.quit)
	}
	h.cancel()
	<-h.done
}
