package wire

import (
	"math"
	"testing"
	"testing/quick"

	"vertical3d/internal/tech"
)

func TestDelayGrowsQuadraticallyUnrepeatered(t *testing.T) {
	n := tech.N22()
	w1 := Wire{Node: n, Class: SemiGlobal, Length: 100 * tech.Micro}
	w2 := Wire{Node: n, Class: SemiGlobal, Length: 200 * tech.Micro}
	// With a fixed driver, doubling length should more than double delay
	// (distributed RC term is quadratic in length).
	d1 := w1.ElmoreDelay(1e3, 0)
	d2 := w2.ElmoreDelay(1e3, 0)
	if d2 <= 2*d1 {
		t.Errorf("unrepeatered wire delay not superlinear: %v -> %v", d1, d2)
	}
}

func TestRepeatersLinearizeDelay(t *testing.T) {
	n := tech.N22()
	long := Wire{Node: n, Class: Global, Length: 4000 * tech.Micro}
	short := Wire{Node: n, Class: Global, Length: 1000 * tech.Micro}
	rl, err := InsertRepeaters(long)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := InsertRepeaters(short)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rl.Delay / rs.Delay
	if ratio < 3.0 || ratio > 5.5 {
		t.Errorf("repeatered delay should scale ≈linearly with length: 4x length gave %.2fx delay", ratio)
	}
}

func TestRepeatersBeatRawOnLongWires(t *testing.T) {
	n := tech.N22()
	w := Wire{Node: n, Class: SemiGlobal, Length: 2000 * tech.Micro}
	rep, err := InsertRepeaters(w)
	if err != nil {
		t.Fatal(err)
	}
	raw := w.ElmoreDelay(n.RInv/16, 4*n.CInv)
	if rep.Delay >= raw {
		t.Errorf("repeaters should win on a 2mm wire: repeatered %v vs raw %v", rep.Delay, raw)
	}
	if rep.Segments < 2 {
		t.Errorf("a 2mm semi-global wire should need multiple segments, got %d", rep.Segments)
	}
}

func TestInsertRepeatersRejectsBadLength(t *testing.T) {
	if _, err := InsertRepeaters(Wire{Node: tech.N22(), Length: 0}); err == nil {
		t.Error("expected error for zero-length wire")
	}
	if _, err := InsertRepeaters(Wire{Node: tech.N22(), Length: -1}); err == nil {
		t.Error("expected error for negative-length wire")
	}
}

func TestClassOrdering(t *testing.T) {
	n := tech.N22()
	l := Wire{Node: n, Class: Local, Length: 500 * tech.Micro}
	g := Wire{Node: n, Class: Global, Length: 500 * tech.Micro}
	if l.Resistance() <= g.Resistance() {
		t.Error("local wires are more resistive per length than global wires")
	}
	if DelayOrRaw(l) <= DelayOrRaw(g) {
		t.Error("at equal length, a local wire should be slower than a global wire")
	}
}

func TestSwitchEnergyScalesWithLength(t *testing.T) {
	n := tech.N22()
	a := Wire{Node: n, Class: Local, Length: 10 * tech.Micro}
	b := Wire{Node: n, Class: Local, Length: 20 * tech.Micro}
	ea, eb := a.SwitchEnergy(0), b.SwitchEnergy(0)
	if math.Abs(eb-2*ea)/eb > 1e-9 {
		t.Errorf("energy should be linear in length: %v vs %v", ea, eb)
	}
}

func TestStringNames(t *testing.T) {
	for c, want := range map[Class]string{Local: "local", SemiGlobal: "semi-global", Global: "global", Class(99): "unknown"} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestPropertyHalvingLengthReducesDelay(t *testing.T) {
	// The M3D premise: folding a block so wires are half as long always
	// reduces wire delay, for any class and any length in a sane range.
	n := tech.N22()
	f := func(lenSeed uint16, classSeed uint8) bool {
		length := (10 + float64(lenSeed)) * tech.Micro // 10µm .. ~65mm
		class := Class(int(classSeed) % 3)
		full := Wire{Node: n, Class: class, Length: length}
		half := Wire{Node: n, Class: class, Length: length / 2}
		return DelayOrRaw(half) < DelayOrRaw(full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRepeateredDelayMonotoneInLength(t *testing.T) {
	n := tech.N22()
	f := func(aSeed, bSeed uint16) bool {
		a := (50 + float64(aSeed)) * tech.Micro
		b := a + (1+float64(bSeed))*tech.Micro
		ra, err1 := InsertRepeaters(Wire{Node: n, Class: Global, Length: a})
		rb, err2 := InsertRepeaters(Wire{Node: n, Class: Global, Length: b})
		if err1 != nil || err2 != nil {
			return false
		}
		return rb.Delay > ra.Delay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
