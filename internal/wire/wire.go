// Package wire models on-chip interconnect delay, energy and repeater
// insertion. Wire delay scaling is the central motivation of the paper: wires
// have historically scaled slower than transistors, so wire-dominated paths
// (SRAM wordlines/bitlines, the ALU bypass network, NoC links) are exactly
// the ones a vertical M3D layout shortens.
package wire

import (
	"math"

	"vertical3d/internal/guard"
	"vertical3d/internal/tech"
)

// Class selects the metal-layer family a wire routes on.
type Class int

const (
	// Local wires connect nearby gates within a block (lowest metal layers).
	Local Class = iota
	// SemiGlobal wires connect blocks within a pipeline stage.
	SemiGlobal
	// Global wires span a significant part of the chip, e.g. NoC links.
	Global
)

// String returns the wire class name.
func (c Class) String() string {
	switch c {
	case Local:
		return "local"
	case SemiGlobal:
		return "semi-global"
	case Global:
		return "global"
	default:
		return "unknown"
	}
}

// Wire is a straight interconnect segment of a given class and length.
type Wire struct {
	Node   *tech.Node
	Class  Class
	Length float64 // meters
}

// Validate checks the wire's boundary invariants: an attached node, a known
// class, and a finite positive length. The on-chip models compose wire
// delays thousands of times per sweep cell, so a single NaN length here
// would otherwise surface only as a corrupt figure.
func (w Wire) Validate() error {
	c := guard.New("wire")
	c.Check(w.Node != nil, "Node", "must not be nil")
	c.Check(w.Class >= Local && w.Class <= Global, "Class", "unknown class %d", int(w.Class))
	c.Positive("Length", w.Length)
	return c.Err()
}

// perMeter returns resistance and capacitance per meter for the wire class.
func (w Wire) perMeter() (rp, cp float64) {
	switch w.Class {
	case SemiGlobal:
		return w.Node.SemiGlobalWireR, w.Node.SemiGlobalWireC
	case Global:
		return w.Node.GlobalWireR, w.Node.GlobalWireC
	default:
		return w.Node.LocalWireR, w.Node.LocalWireC
	}
}

// Resistance returns the total wire resistance in ohms.
func (w Wire) Resistance() float64 {
	rp, _ := w.perMeter()
	return rp * w.Length
}

// Capacitance returns the total wire capacitance in farads.
func (w Wire) Capacitance() float64 {
	_, cp := w.perMeter()
	return cp * w.Length
}

// ElmoreDelay returns the delay of the wire driven by a source with drive
// resistance rdrv into a lumped load cload at the far end, using the
// distributed-RC Elmore approximation:
//
//	t = rdrv*(Cw + Cl) + Rw*(Cw/2 + Cl)
func (w Wire) ElmoreDelay(rdrv, cload float64) float64 {
	rw, cw := w.Resistance(), w.Capacitance()
	return rdrv*(cw+cload) + rw*(cw/2+cload)
}

// SwitchEnergy returns the CV² energy of one full switching cycle of the wire
// plus its load at the node supply.
func (w Wire) SwitchEnergy(cload float64) float64 {
	v := w.Node.Vdd
	return (w.Capacitance() + cload) * v * v
}

// Repeatered describes an optimally repeatered long wire.
type Repeatered struct {
	Wire        Wire
	Segments    int     // number of repeater segments (≥1)
	RepeaterMul float64 // repeater size as a multiple of a minimum inverter
	Delay       float64 // total delay in seconds
	Energy      float64 // per-transition energy including repeaters, joules
}

// InsertRepeaters computes a classical optimal repeater assignment for the
// wire: segment length and repeater size that minimise delay. It returns
// the guard violations for invalid wires (nil node, unknown class, or a
// non-positive/non-finite length).
func InsertRepeaters(w Wire) (Repeatered, error) {
	if err := w.Validate(); err != nil {
		return Repeatered{}, err
	}
	n := w.Node
	rp, cp := w.perMeter()
	// Classical closed forms (Bakoglu): optimal segment length and size.
	lopt := math.Sqrt(2 * n.RInv * n.CInv / (rp * cp))
	segs := int(math.Max(1, math.Round(w.Length/lopt)))
	size := math.Max(1, math.Sqrt((n.RInv*cp)/(rp*n.CInv)))

	segLen := w.Length / float64(segs)
	segWire := Wire{Node: n, Class: w.Class, Length: segLen}
	rdrv := n.RInv / size
	cin := n.CInv * size
	perSeg := segWire.ElmoreDelay(rdrv, cin) + n.Tau // + repeater parasitic
	energy := (w.Capacitance() + float64(segs)*cin) * n.Vdd * n.Vdd
	return Repeatered{
		Wire:        w,
		Segments:    segs,
		RepeaterMul: size,
		Delay:       float64(segs) * perSeg,
		Energy:      energy,
	}, nil
}

// DelayOrRaw returns the best achievable delay for the wire driven by a
// standard driver: the repeatered delay when beneficial, otherwise the raw
// Elmore delay with a 16x driver.
func DelayOrRaw(w Wire) float64 {
	raw := w.ElmoreDelay(w.Node.RInv/16, 4*w.Node.CInv)
	rep, err := InsertRepeaters(w)
	if err != nil || rep.Delay >= raw {
		return raw
	}
	return rep.Delay
}
