package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func closeTo(got, want, relTol float64) bool {
	if want == 0 {
		return math.Abs(got) < relTol
	}
	return math.Abs(got-want)/math.Abs(want) <= relTol
}

func TestTable1AreaOverheads(t *testing.T) {
	n := N15()
	cases := []struct {
		via        Via
		wantAdder  float64 // fraction of 32-bit adder
		wantSRAM32 float64 // fraction of 32 SRAM cells
		tol        float64
	}{
		{MIV(), 0.0001, 0.001, 1.0},           // <0.01% and ≈0.1%
		{TSVAggressive(), 0.080, 2.717, 0.05}, // 8.0% and 271.7%
		{TSVResearch(), 1.287, 43.478, 0.05},  // 128.7% and 4347.8%
	}
	for _, c := range cases {
		gotA := c.via.OverheadVsAdder32(n)
		gotS := c.via.OverheadVsSRAMWord(n)
		if !closeTo(gotA, c.wantAdder, c.tol) {
			t.Errorf("%s overhead vs adder = %.4f%%, want ≈%.4f%%", c.via.Name, gotA*100, c.wantAdder*100)
		}
		if !closeTo(gotS, c.wantSRAM32, c.tol) {
			t.Errorf("%s overhead vs SRAM word = %.2f%%, want ≈%.2f%%", c.via.Name, gotS*100, c.wantSRAM32*100)
		}
	}
}

func TestTable1MIVNegligible(t *testing.T) {
	n := N15()
	if got := MIV().OverheadVsAdder32(n); got >= 0.0001 {
		t.Errorf("MIV overhead vs adder = %.5f%%, paper reports <0.01%%", got*100)
	}
	if got := MIV().OverheadVsSRAMWord(n); !closeTo(got, 0.001, 0.15) {
		t.Errorf("MIV overhead vs SRAM word = %.4f%%, paper reports 0.1%%", got*100)
	}
}

func TestFigure2RelativeAreas(t *testing.T) {
	inv, miv, sram, tsv := RelativeAreaFigure2(N15())
	if inv != 1.0 {
		t.Fatalf("inverter must normalise to 1.0, got %v", inv)
	}
	if !closeTo(miv, 0.07, 0.05) {
		t.Errorf("MIV relative area = %.3f, paper reports 0.07x", miv)
	}
	if !closeTo(sram, 2.0, 0.05) {
		t.Errorf("SRAM bitcell relative area = %.2f, paper reports 2x", sram)
	}
	if !closeTo(tsv, 37, 0.05) {
		t.Errorf("TSV relative area = %.1f, paper reports 37x", tsv)
	}
}

func TestTable2ViaElectricals(t *testing.T) {
	miv, tsv13, tsv5 := MIV(), TSVAggressive(), TSVResearch()
	if !closeTo(miv.Capacitance, 0.1*FemtoFarad, 0.01) || !closeTo(miv.Resistance, 5.5, 0.01) {
		t.Errorf("MIV electricals: C=%v R=%v, want 0.1fF 5.5Ω", miv.Capacitance, miv.Resistance)
	}
	if !closeTo(tsv13.Capacitance, 2.5*FemtoFarad, 0.01) || !closeTo(tsv13.Resistance, 0.1, 0.01) {
		t.Errorf("TSV-1.3µm electricals: C=%v R=%v, want 2.5fF 100mΩ", tsv13.Capacitance, tsv13.Resistance)
	}
	if !closeTo(tsv5.Capacitance, 37*FemtoFarad, 0.01) || !closeTo(tsv5.Resistance, 0.02, 0.01) {
		t.Errorf("TSV-5µm electricals: C=%v R=%v, want 37fF 20mΩ", tsv5.Capacitance, tsv5.Resistance)
	}
	if !closeTo(miv.Height, 310*Nano, 0.01) || !closeTo(tsv13.Height, 13*Micro, 0.01) || !closeTo(tsv5.Height, 25*Micro, 0.01) {
		t.Error("via heights disagree with Table 2")
	}
}

func TestMIVDriveDelayAdvantage(t *testing.T) {
	// Srinivasa et al. [47]: the delay of a gate driving an MIV is ≈78% lower
	// than one driving a TSV. With a minimum inverter at 22nm driving a small
	// downstream load, the capacitance ratio should deliver a similar margin.
	n := N22()
	load := 4 * n.CInv
	dMIV := MIV().DriveDelay(n.RInv, load)
	dTSV := TSVAggressive().DriveDelay(n.RInv, load)
	saving := 1 - dMIV/dTSV
	if saving < 0.55 || saving > 0.95 {
		t.Errorf("MIV drive-delay saving vs TSV = %.1f%%, expected in the vicinity of 78%%", saving*100)
	}
}

func TestViaEnergyOrdering(t *testing.T) {
	vdd := 0.8
	if MIV().SwitchEnergy(vdd) >= TSVAggressive().SwitchEnergy(vdd) {
		t.Error("MIV switch energy must be below the 1.3µm TSV's")
	}
	if TSVAggressive().SwitchEnergy(vdd) >= TSVResearch().SwitchEnergy(vdd) {
		t.Error("1.3µm TSV switch energy must be below the 5µm TSV's")
	}
}

func TestProcessFactors(t *testing.T) {
	if got := HPBulk.DelayFactor(); got != 1.0 {
		t.Errorf("HPBulk delay factor = %v, want 1.0", got)
	}
	if got := LPTopLayer.DelayFactor(); !closeTo(got, 1.17, 0.001) {
		t.Errorf("top layer delay factor = %v, paper reports 17%% slower inverter", got)
	}
	if FDSOILowPower.DynamicEnergyFactor() >= HPBulk.DynamicEnergyFactor() {
		t.Error("FDSOI must save dynamic energy vs HP bulk")
	}
	if FDSOILowPower.LeakageFactor() >= HPBulk.LeakageFactor() {
		t.Error("FDSOI must leak less than HP bulk")
	}
	for _, p := range []Process{HPBulk, LPTopLayer, FDSOILowPower} {
		if p.String() == "" {
			t.Errorf("process %d has empty name", int(p))
		}
	}
}

func TestNodeSanity(t *testing.T) {
	for _, n := range []*Node{N22(), N15()} {
		if n.Tau <= 0 || n.FO4() <= n.Tau {
			t.Errorf("%s: inconsistent tau/FO4", n.Name)
		}
		if math.Abs(n.Tau-n.RInv*n.CInv)/n.Tau > 1e-9 {
			t.Errorf("%s: tau must equal RInv*CInv", n.Name)
		}
		if n.LocalWireR <= n.SemiGlobalWireR || n.SemiGlobalWireR <= n.GlobalWireR {
			t.Errorf("%s: wire resistance must decrease with wire class", n.Name)
		}
		if n.LocalWireC >= n.GlobalWireC {
			t.Errorf("%s: upper-level wires carry more capacitance per length", n.Name)
		}
		if n.SRAMCellArea <= n.InvArea {
			t.Errorf("%s: a 6T bitcell is larger than an inverter", n.Name)
		}
	}
}

func TestNodeScaling(t *testing.T) {
	// Areas shrink and wires get more resistive moving from 22nm to 15nm.
	a, b := N22(), N15()
	if b.SRAMCellArea >= a.SRAMCellArea || b.InvArea >= a.InvArea || b.Adder32Area >= a.Adder32Area {
		t.Error("15nm areas must be smaller than 22nm areas")
	}
	if b.LocalWireR <= a.LocalWireR {
		t.Error("15nm local wires must be more resistive than 22nm")
	}
}

func TestViaDriveDelayProperties(t *testing.T) {
	// Drive delay is monotone in both drive resistance and load for any via.
	f := func(rSeed, cSeed uint16) bool {
		r := 1e3 + float64(rSeed)         // 1kΩ..~66kΩ
		c := 1e-16 + float64(cSeed)*1e-18 // 0.1fF..
		for _, v := range []Via{MIV(), TSVAggressive(), TSVResearch()} {
			if v.DriveDelay(r+1e3, c) <= v.DriveDelay(r, c) {
				return false
			}
			if v.DriveDelay(r, c+1e-16) <= v.DriveDelay(r, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
