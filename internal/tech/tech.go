// Package tech provides the technology-level parameters that anchor every
// model in this repository: transistor characteristics at the simulated
// process node, wire parasitics, and the physical and electrical properties
// of the two kinds of inter-layer vias compared by the paper — Monolithic
// Inter-layer Vias (MIVs) used by M3D integration, and Through-Silicon Vias
// (TSVs) used by conventional die stacking (TSV3D).
//
// The constants reproduce the published reference points the paper builds
// on: Table 1 (via area overhead versus a 32-bit adder and 32 SRAM cells),
// Table 2 (via dimensions, capacitance and resistance), and Figure 2
// (relative areas of an FO1 inverter, an MIV, an SRAM bitcell, and a TSV).
package tech

import (
	"fmt"
	"math"

	"vertical3d/internal/guard"
)

// Physical unit helpers. All internal lengths are meters, capacitances
// farads, resistances ohms, times seconds, and energies joules unless a
// name says otherwise.
const (
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3

	FemtoFarad = 1e-15
	PicoSecond = 1e-12
)

// Process identifies the manufacturing flavour of a silicon layer.
// M3D integration permits mixing processes across layers: the bottom layer
// can use high-performance bulk transistors while the top layer uses a
// lower-power process (Section 5 of the paper).
type Process int

const (
	// HPBulk is a high-performance bulk CMOS process — the paper's bottom
	// layer and the process used for all 2D baselines.
	HPBulk Process = iota
	// LPTopLayer is the low-temperature-processed top M3D layer: same design
	// rules as HPBulk but with degraded transistor speed (Shi et al. [45]
	// measure a 17% slower inverter).
	LPTopLayer
	// FDSOILowPower is a low-power FDSOI process usable on the top layer
	// when iso-performance layers are available; slower but more
	// energy-efficient (Section 7.1.2).
	FDSOILowPower
)

// String returns the human-readable process name.
func (p Process) String() string {
	switch p {
	case HPBulk:
		return "HP-bulk"
	case LPTopLayer:
		return "LP-top-layer"
	case FDSOILowPower:
		return "FDSOI-LP"
	default:
		return fmt.Sprintf("Process(%d)", int(p))
	}
}

// DelayFactor returns the multiplicative gate-delay penalty of the process
// relative to HPBulk. The top M3D layer is fabricated at low temperature and
// its inverter is 17% slower [45]; FDSOI low-power is slower still.
func (p Process) DelayFactor() float64 {
	switch p {
	case LPTopLayer:
		return 1.17
	case FDSOILowPower:
		return 1.30
	default:
		return 1.0
	}
}

// DynamicEnergyFactor returns the multiplicative dynamic-energy factor of
// the process relative to HPBulk at equal sizing. The low-temperature top
// layer switches approximately the same charge; FDSOI saves energy thanks to
// reduced junction capacitance and lower leakage-driven sizing.
func (p Process) DynamicEnergyFactor() float64 {
	switch p {
	case FDSOILowPower:
		return 0.75
	default:
		return 1.0
	}
}

// LeakageFactor returns the multiplicative leakage-power factor relative to
// HPBulk.
func (p Process) LeakageFactor() float64 {
	switch p {
	case LPTopLayer:
		return 0.90 // slower devices leak slightly less
	case FDSOILowPower:
		return 0.35
	default:
		return 1.0
	}
}

// Node bundles every per-process-node constant the circuit, wire and SRAM
// models consume. Construct one with N22 or N15; fields are exported so
// studies can build hypothetical nodes.
type Node struct {
	Name string

	// FeatureSize is the drawn half-pitch F in meters (22nm → 22e-9).
	FeatureSize float64

	// Vdd is the nominal supply voltage in volts. The paper follows ITRS and
	// sets 0.8V at 22nm.
	Vdd float64

	// Tau is the intrinsic RC time constant of a minimum inverter driving an
	// identical inverter (seconds). Stage delay in the Horowitz/logical-effort
	// model is tau*(p + g*h).
	Tau float64

	// CInv is the input capacitance of a minimum-sized inverter (farads).
	CInv float64

	// RInv is the effective drive resistance of a minimum-sized inverter
	// (ohms). Tau = RInv * CInv.
	RInv float64

	// InvArea is the layout area of an FO1 inverter cell in m².
	InvArea float64

	// SRAMCellArea is the layout area of a single-ported 6T SRAM bitcell in m².
	SRAMCellArea float64

	// Adder32Area is the layout area of a 32-bit adder in m² (Intel [24, 34]).
	Adder32Area float64

	// Wire parasitics per meter for the three wire classes used by the
	// models. Local wires route within an array or a stage; semi-global
	// wires connect blocks within a stage; global wires cross the chip.
	LocalWireR      float64 // ohm/m
	LocalWireC      float64 // F/m
	SemiGlobalWireR float64 // ohm/m
	SemiGlobalWireC float64 // F/m
	GlobalWireR     float64 // ohm/m
	GlobalWireC     float64 // F/m

	// LeakagePerInvWatts is the leakage power of a minimum inverter in watts,
	// used to scale structure leakage with transistor count.
	LeakagePerInvWatts float64
}

// FO4 returns the canonical fan-out-of-4 inverter delay for the node:
// tau * (p + g*h) with parasitic delay p = 1, logical effort g = 1, h = 4.
func (n *Node) FO4() float64 { return n.Tau * 5 }

// Validate checks the node's physical constants: every quantity the
// Elmore/Horowitz chains divide by or scale with must be finite and
// positive, so a corrupt or hand-rolled node fails fast with a named
// violation instead of seeding NaNs into every downstream model.
func (n *Node) Validate() error {
	c := guard.New("tech." + n.Name)
	c.Positive("FeatureSize", n.FeatureSize)
	c.Positive("Vdd", n.Vdd)
	c.Positive("Tau", n.Tau)
	c.Positive("CInv", n.CInv)
	c.Positive("RInv", n.RInv)
	c.Positive("InvArea", n.InvArea)
	c.Positive("SRAMCellArea", n.SRAMCellArea)
	c.Positive("Adder32Area", n.Adder32Area)
	c.Positive("LocalWireR", n.LocalWireR)
	c.Positive("LocalWireC", n.LocalWireC)
	c.Positive("SemiGlobalWireR", n.SemiGlobalWireR)
	c.Positive("SemiGlobalWireC", n.SemiGlobalWireC)
	c.Positive("GlobalWireR", n.GlobalWireR)
	c.Positive("GlobalWireC", n.GlobalWireC)
	c.Positive("LeakagePerInvWatts", n.LeakagePerInvWatts)
	return c.Err()
}

// N22 returns the 22nm high-performance planar node used for all SRAM/CAM
// array modelling (the paper is "conservative" and uses 22nm parameters in
// CACTI even though areas are quoted at 15nm).
func N22() *Node {
	f := 22 * Nano
	cinv := 0.20 * FemtoFarad
	rinv := 12.5e3
	return &Node{
		Name:        "22nm-HP",
		FeatureSize: f,
		Vdd:         0.8,
		Tau:         rinv * cinv, // 2.5 ps
		CInv:        cinv,
		RInv:        rinv,
		// Area scales as F²; anchored to the 15nm figures below by (22/15)².
		InvArea:      0.0357 * Micro * Micro * (22.0 * 22.0) / (15.0 * 15.0),
		SRAMCellArea: 0.0714 * Micro * Micro * (22.0 * 22.0) / (15.0 * 15.0),
		Adder32Area:  77.7 * Micro * Micro * (22.0 * 22.0) / (15.0 * 15.0),

		LocalWireR:      5.7e6,   // 5.7 ohm/µm: fine-pitch Cu with size effects
		LocalWireC:      0.19e-9, // 0.19 fF/µm
		SemiGlobalWireR: 1.8e6,
		SemiGlobalWireC: 0.21e-9,
		GlobalWireR:     0.35e6,
		GlobalWireC:     0.24e-9,

		LeakagePerInvWatts: 18e-9,
	}
}

// N15 returns the 15nm node at which the paper quotes the via-overhead
// comparisons of Table 1 and Figure 2.
func N15() *Node {
	cinv := 0.16 * FemtoFarad
	rinv := 13.5e3
	return &Node{
		Name:        "15nm-HP",
		FeatureSize: 15 * Nano,
		Vdd:         0.75,
		Tau:         rinv * cinv,
		CInv:        cinv,
		RInv:        rinv,

		InvArea:      0.0357 * Micro * Micro, // MIV(50nm)² / 0.07 per Figure 2
		SRAMCellArea: 0.0714 * Micro * Micro, // 2× the FO1 inverter (Figure 2)
		Adder32Area:  77.7 * Micro * Micro,   // Intel [24, 34]

		LocalWireR:      8.0e6,
		LocalWireC:      0.18e-9,
		SemiGlobalWireR: 2.6e6,
		SemiGlobalWireC: 0.20e-9,
		GlobalWireR:     0.5e6,
		GlobalWireC:     0.23e-9,

		LeakagePerInvWatts: 14e-9,
	}
}

// Via models a single vertical inter-layer connection: an MIV or a TSV.
// All three designs from Table 2 are provided as constructors.
type Via struct {
	Name string

	// Diameter is the via side (MIVs are effectively square) or drilled
	// diameter (TSVs), in meters.
	Diameter float64

	// Height is the vertical extent of the via in meters.
	Height float64

	// Capacitance in farads and Resistance in ohms, per Table 2.
	Capacitance float64
	Resistance  float64

	// KeepOutZoneSide is the side of the square keep-out region the via
	// requires, in meters. MIVs need no KOZ, so it equals the diameter.
	KeepOutZoneSide float64
}

// MIV returns the Monolithic Inter-layer Via of current M3D technology:
// 50nm side, 310nm tall, ≈0.1fF, 5.5Ω, no keep-out zone (Table 2, [5, 7, 14]).
func MIV() Via {
	return Via{
		Name:            "MIV-50nm",
		Diameter:        50 * Nano,
		Height:          310 * Nano,
		Capacitance:     0.1 * FemtoFarad,
		Resistance:      5.5,
		KeepOutZoneSide: 50 * Nano,
	}
}

// TSVAggressive returns the aggressive 1.3µm TSV the paper grants TSV3D —
// half the ITRS-projected 2.6µm diameter. The keep-out zone brings the
// occupied square to 2.5µm on a side (≈6.25µm², which is 8.0% of a 32-bit
// adder as Table 1 reports).
func TSVAggressive() Via {
	return Via{
		Name:            "TSV-1.3um",
		Diameter:        1.3 * Micro,
		Height:          13 * Micro,
		Capacitance:     2.5 * FemtoFarad,
		Resistance:      100 * Milli,
		KeepOutZoneSide: 2.5 * Micro,
	}
}

// TSVResearch returns the most recent TSV demonstrated in research [20]:
// 5µm diameter, 25µm tall. With its keep-out zone it occupies a 10µm square
// (128.7% of a 32-bit adder, Table 1).
func TSVResearch() Via {
	return Via{
		Name:            "TSV-5um",
		Diameter:        5 * Micro,
		Height:          25 * Micro,
		Capacitance:     37 * FemtoFarad,
		Resistance:      20 * Milli,
		KeepOutZoneSide: 10 * Micro,
	}
}

// BodyArea returns the silicon area of the via body itself in m²: square for
// MIVs, circular for TSVs.
func (v Via) BodyArea() float64 {
	if v.Diameter <= 100*Nano {
		return v.Diameter * v.Diameter
	}
	r := v.Diameter / 2
	return math.Pi * r * r
}

// OccupiedArea returns the full area cost of placing the via, including the
// keep-out zone: the square of the KOZ side.
func (v Via) OccupiedArea() float64 {
	return v.KeepOutZoneSide * v.KeepOutZoneSide
}

// OverheadVsAdder32 returns OccupiedArea as a fraction of a 32-bit adder at
// the given node (Table 1, first row).
func (v Via) OverheadVsAdder32(n *Node) float64 {
	return v.OccupiedArea() / n.Adder32Area
}

// OverheadVsSRAMWord returns OccupiedArea as a fraction of a 32-bit SRAM
// word — 32 bitcells — at the given node (Table 1, second row).
func (v Via) OverheadVsSRAMWord(n *Node) float64 {
	return v.OccupiedArea() / (32 * n.SRAMCellArea)
}

// RCDelay returns the intrinsic RC product of the via in seconds. MIVs trade
// higher resistance for far lower capacitance; the paper notes the RC
// products are roughly similar but the *drive* delay and energy, which are
// dominated by capacitance, strongly favour MIVs.
func (v Via) RCDelay() float64 { return v.Resistance * v.Capacitance }

// DriveDelay returns the delay of a gate with drive resistance rdrv
// pushing the via capacitance plus a downstream load cload: the
// capacitance-dominated figure of merit Srinivasa et al. [47] report a 78%
// MIV advantage on.
func (v Via) DriveDelay(rdrv, cload float64) float64 {
	return (rdrv + v.Resistance) * (v.Capacitance + cload)
}

// SwitchEnergy returns the CV² dynamic energy of toggling the via once at
// supply vdd (joules). A factor 1/2 is deliberately not applied: a full
// charge-discharge cycle dissipates CV².
func (v Via) SwitchEnergy(vdd float64) float64 {
	return v.Capacitance * vdd * vdd
}

// RelativeAreaFigure2 reproduces Figure 2: the areas of an FO1 inverter, an
// MIV, an SRAM bitcell, and a 1.3µm TSV (body only), each normalised to the
// inverter.
func RelativeAreaFigure2(n *Node) (inv, miv, sram, tsv float64) {
	inv = 1.0
	miv = MIV().BodyArea() / n.InvArea
	sram = n.SRAMCellArea / n.InvArea
	tsv = TSVAggressive().BodyArea() / n.InvArea
	return inv, miv, sram, tsv
}
