// Package power is the McPAT substitute: an event-driven energy model of
// the simulated core. Per-event energies are anchored to the sram package's
// access energies (with a peripheral-overhead factor covering control,
// pipeline latches and ECC that CACTI-style array models omit), the clock
// tree and logic follow the Section 6 methodology, and every category is
// scaled by the design's EnergyFactors derived from the partition studies.
//
// The constants are calibrated so the 2D baseline core averages ≈6.4W
// across SPEC-like workloads excluding L2/L3 (Section 7.1.3).
package power

import (
	"vertical3d/internal/config"
	"vertical3d/internal/guard"
	"vertical3d/internal/mem"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
)

// Per-event energies in joules at the Base design (0.8V). Array events are
// scaled up by overheadFactor relative to the raw CACTI-style numbers.
const (
	// Array and logic events carry McPAT-style overheads over the raw
	// CACTI-style access energies: pipeline latches, control, clock gating
	// drivers, and the wiring that moves operands to and from the arrays.
	arrayOverhead = 85.0
	logicOverhead = 42.0

	eRFRead    = 1.9e-12 * arrayOverhead
	eRFWrite   = 2.1e-12 * arrayOverhead
	eRATLookup = 0.5e-12 * arrayOverhead
	eIQInsert  = 0.8e-12 * arrayOverhead
	eIQWakeup  = 0.9e-12 * arrayOverhead
	eSQSearch  = 1.1e-12 * arrayOverhead
	eROBWrite  = 0.6e-12 * arrayOverhead
	eBPLookup  = 1.2e-12 * arrayOverhead // BPT + BTB per fetch group
	eIL1       = 4.5e-12 * arrayOverhead
	eDL1       = 5.0e-12 * arrayOverhead
	eL2        = 9.0e-12 * arrayOverhead
	eL3        = 16.0e-12 * arrayOverhead
	eDRAM      = 120.0e-12 * arrayOverhead

	// Logic energies per operation (decode, rename control, FU datapath,
	// bypass drivers).
	eFrontendOp = 6.0e-12 * logicOverhead
	eALUOp      = 5.0e-12 * logicOverhead
	eFPUOp      = 14.0e-12 * logicOverhead
	eLSUOp      = 4.0e-12 * logicOverhead

	// Wire energy per committed instruction: result buses and other
	// semi-global interconnect, which scales with the core footprint.
	eWirePerInstr = 8.0e-12 * logicOverhead

	// Clock tree: energy per cycle at Base (latches + distribution wire).
	eClockPerCycle = 420.0e-12

	// Leakage power of the Base core in watts at 0.8V.
	leakWatts = 1.5

	// NoC energy per hop per transaction (multicore only).
	eNoCHop = 18.0e-12 * arrayOverhead

	baseVdd = 0.8
)

// Breakdown is the energy decomposition of one run.
type Breakdown struct {
	SRAMJ    float64
	LogicJ   float64
	ClockJ   float64
	WireJ    float64
	NoCJ     float64
	LeakageJ float64

	Seconds float64
}

// TotalJ returns the total energy in joules.
func (b Breakdown) TotalJ() float64 {
	return b.SRAMJ + b.LogicJ + b.ClockJ + b.WireJ + b.NoCJ + b.LeakageJ
}

// AvgWatts returns the average power.
func (b Breakdown) AvgWatts() float64 {
	if b.Seconds == 0 {
		return 0
	}
	return b.TotalJ() / b.Seconds
}

// Validate checks the breakdown's physical invariants: every energy
// component and the duration must be finite and non-negative. The experiment
// pipeline runs this on every estimate, so corrupt statistics (overflowed
// counters, NaN durations) surface as a structured error at the model
// boundary instead of propagating into experiment tables.
func (b Breakdown) Validate() error {
	c := guard.New("power.Breakdown")
	c.NonNegative("SRAMJ", b.SRAMJ)
	c.NonNegative("LogicJ", b.LogicJ)
	c.NonNegative("ClockJ", b.ClockJ)
	c.NonNegative("WireJ", b.WireJ)
	c.NonNegative("NoCJ", b.NoCJ)
	c.NonNegative("LeakageJ", b.LeakageJ)
	c.NonNegative("Seconds", b.Seconds)
	return c.Err()
}

// Estimate computes the energy of a run: core event statistics st, memory
// hierarchy statistics hs, over the given wall-clock duration.
func Estimate(cfg config.Config, st uarch.Stats, hs mem.HierStats, seconds float64) Breakdown {
	f := cfg.EnergyFactors
	vScale := (cfg.Vdd / baseVdd) * (cfg.Vdd / baseVdd)
	// Leakage drops steeply with voltage (DIBL + gate leakage).
	v := cfg.Vdd / baseVdd
	leakScale := v * v * v

	var b Breakdown
	b.Seconds = seconds

	sram := float64(st.RFReads)*eRFRead +
		float64(st.RFWrites)*eRFWrite +
		float64(st.RATLookups)*eRATLookup +
		float64(st.IQInserts)*eIQInsert +
		float64(st.IQWakeups)*eIQWakeup +
		float64(st.SQSearches)*eSQSearch +
		float64(st.ROBWrites)*eROBWrite +
		float64(st.Branches)*eBPLookup +
		float64(hs.IL1.Accesses)*eIL1 +
		float64(hs.DL1.Accesses)*eDL1 +
		float64(hs.L2.Accesses)*eL2 +
		float64(hs.L3.Accesses)*eL3 +
		float64(hs.DRAMAccesses)*eDRAM
	b.SRAMJ = sram * f.SRAM * vScale

	intOps := st.KindCount[trace.ALU] + st.KindCount[trace.Branch] +
		st.KindCount[trace.Mul] + st.KindCount[trace.Div]
	fpOps := st.KindCount[trace.FPAdd] + st.KindCount[trace.FPMul] + st.KindCount[trace.FPDiv]
	memOps := st.KindCount[trace.Load] + st.KindCount[trace.Store]
	logic := float64(st.Instrs)*eFrontendOp +
		float64(intOps)*eALUOp +
		float64(fpOps)*eFPUOp +
		float64(memOps)*eLSUOp
	b.LogicJ = logic * f.Logic * vScale

	b.ClockJ = float64(st.Cycles) * eClockPerCycle * f.Clock * vScale
	b.WireJ = float64(st.Instrs) * eWirePerInstr * f.Wire * vScale
	b.NoCJ = float64(hs.NoCHops) * eNoCHop * f.Wire * vScale
	b.LeakageJ = leakWatts * f.Leakage * leakScale * seconds
	return b
}

// Scale multiplies every component (used to aggregate cores).
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{
		SRAMJ: b.SRAMJ * k, LogicJ: b.LogicJ * k, ClockJ: b.ClockJ * k,
		WireJ: b.WireJ * k, NoCJ: b.NoCJ * k, LeakageJ: b.LeakageJ * k,
		Seconds: b.Seconds,
	}
}

// Add sums two breakdowns (keeping the longer duration).
func (b Breakdown) Add(o Breakdown) Breakdown {
	sec := b.Seconds
	if o.Seconds > sec {
		sec = o.Seconds
	}
	return Breakdown{
		SRAMJ: b.SRAMJ + o.SRAMJ, LogicJ: b.LogicJ + o.LogicJ,
		ClockJ: b.ClockJ + o.ClockJ, WireJ: b.WireJ + o.WireJ,
		NoCJ: b.NoCJ + o.NoCJ, LeakageJ: b.LeakageJ + o.LeakageJ,
		Seconds: sec,
	}
}

// BlockPowers distributes a run's average power over the floorplan blocks
// for thermal analysis. The keys match floorplan block names.
func BlockPowers(cfg config.Config, st uarch.Stats, hs mem.HierStats, seconds float64) map[string]float64 {
	b := Estimate(cfg, st, hs, seconds)
	if seconds <= 0 {
		return nil
	}
	w := func(j float64) float64 { return j / seconds }

	f := cfg.EnergyFactors
	vScale := (cfg.Vdd / baseVdd) * (cfg.Vdd / baseVdd)
	ev := func(count uint64, e float64) float64 {
		return float64(count) * e * f.SRAM * vScale / seconds
	}

	intOps := st.KindCount[trace.ALU] + st.KindCount[trace.Branch] +
		st.KindCount[trace.Mul] + st.KindCount[trace.Div]
	fpOps := st.KindCount[trace.FPAdd] + st.KindCount[trace.FPMul] + st.KindCount[trace.FPDiv]
	memOps := st.KindCount[trace.Load] + st.KindCount[trace.Store]
	logicW := func(count uint64, e float64) float64 {
		return float64(count) * e * f.Logic * vScale / seconds
	}

	blocks := map[string]float64{
		"FE":  ev(st.Branches, eBPLookup) + ev(hs.IL1.Accesses, eIL1) + logicW(st.Instrs, eFrontendOp),
		"RAT": ev(st.RATLookups, eRATLookup) + ev(st.ROBWrites, eROBWrite),
		"IQ":  ev(st.IQInserts, eIQInsert) + ev(st.IQWakeups, eIQWakeup),
		"RF":  ev(st.RFReads, eRFRead) + ev(st.RFWrites, eRFWrite),
		"ALU": logicW(intOps, eALUOp),
		"FPU": logicW(fpOps, eFPUOp),
		"LSU": ev(st.SQSearches, eSQSearch) + ev(hs.DL1.Accesses, eDL1) + logicW(memOps, eLSUOp),
		"L2":  ev(hs.L2.Accesses, eL2),
	}
	// Distribute clock, wire and leakage over the blocks in proportion to a
	// fixed area share (clock load and leakage track area).
	share := map[string]float64{
		"FE": 0.16, "RAT": 0.05, "IQ": 0.08, "RF": 0.08,
		"ALU": 0.10, "FPU": 0.14, "LSU": 0.17, "L2": 0.22,
	}
	spread := w(b.ClockJ) + w(b.WireJ) + w(b.LeakageJ)
	for k := range blocks {
		blocks[k] += spread * share[k]
	}
	return blocks
}
