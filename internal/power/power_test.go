package power

import (
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/mem"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/workload"
)

func runOne(t *testing.T, cfg config.Config, bench string) (uarch.Stats, mem.HierStats, float64) {
	t.Helper()
	p, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewGenerator(p, 42, 0)
	h, err := mem.NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := uarch.NewCore(0, cfg, gen, h)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Run(60_000)
	sec := float64(st.Cycles) / (cfg.FreqGHz * 1e9)
	return st, h.Stats(), sec
}

func TestBasePowerPlausible(t *testing.T) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	st, hs, sec := runOne(t, s.Configs[config.Base], "Gamess")
	b := Estimate(s.Configs[config.Base], st, hs, sec)
	w := b.AvgWatts()
	// Section 7.1.3: the Base core averages 6.4W. Allow a wide band —
	// absolute watts depend on per-app activity.
	if w < 3 || w > 11 {
		t.Errorf("Base core power %.1fW outside [3,11]W around the paper's 6.4W", w)
	}
	if b.TotalJ() <= 0 || b.SRAMJ <= 0 || b.ClockJ <= 0 || b.LeakageJ <= 0 {
		t.Errorf("all components must be positive: %+v", b)
	}
	// No category may dwarf everything else.
	for name, v := range map[string]float64{"sram": b.SRAMJ, "clock": b.ClockJ, "leak": b.LeakageJ} {
		if v/b.TotalJ() > 0.7 {
			t.Errorf("%s is %.0f%% of total — composition is off", name, 100*v/b.TotalJ())
		}
	}
}

func TestM3DSavesEnergy(t *testing.T) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	stB, hsB, secB := runOne(t, s.Configs[config.Base], "Povray")
	stH, hsH, secH := runOne(t, s.Configs[config.M3DHet], "Povray")
	eB := Estimate(s.Configs[config.Base], stB, hsB, secB).TotalJ()
	eH := Estimate(s.Configs[config.M3DHet], stH, hsH, secH).TotalJ()
	saving := 1 - eH/eB
	if saving < 0.15 || saving > 0.55 {
		t.Errorf("M3D-Het energy saving %.0f%% outside [15,55]%% around the paper's 39%%", saving*100)
	}

	stT, hsT, secT := runOne(t, s.Configs[config.TSV3D], "Povray")
	eT := Estimate(s.Configs[config.TSV3D], stT, hsT, secT).TotalJ()
	if eT <= eH {
		t.Error("TSV3D must save less energy than M3D-Het")
	}
	if eT >= eB {
		t.Error("TSV3D must still save energy vs Base")
	}
}

func TestVoltageScaling(t *testing.T) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Configs[config.M3DHet]
	st, hs, sec := runOne(t, cfg, "Fft")
	hi := Estimate(cfg, st, hs, sec)
	cfg.Vdd = 0.75
	lo := Estimate(cfg, st, hs, sec)
	if lo.TotalJ() >= hi.TotalJ() {
		t.Error("lower Vdd must lower energy")
	}
	if lo.LeakageJ >= hi.LeakageJ {
		t.Error("lower Vdd must lower leakage")
	}
}

func TestBlockPowersCoverFloorplan(t *testing.T) {
	s, err := config.Derive(tech.N22())
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Configs[config.Base]
	st, hs, sec := runOne(t, cfg, "Gobmk")
	blocks := BlockPowers(cfg, st, hs, sec)
	want := []string{"FE", "RAT", "IQ", "RF", "ALU", "FPU", "LSU", "L2"}
	var sum float64
	for _, name := range want {
		v, ok := blocks[name]
		if !ok || v <= 0 {
			t.Errorf("block %q missing or non-positive: %v", name, v)
		}
		sum += v
	}
	total := Estimate(cfg, st, hs, sec).AvgWatts()
	if sum < total*0.5 || sum > total*1.3 {
		t.Errorf("block powers (%.1fW) should roughly match total (%.1fW)", sum, total)
	}
}

func TestScaleAndAdd(t *testing.T) {
	b := Breakdown{SRAMJ: 1, LogicJ: 2, ClockJ: 3, WireJ: 4, NoCJ: 5, LeakageJ: 6, Seconds: 7}
	d := b.Scale(2)
	if d.SRAMJ != 2 || d.LeakageJ != 12 || d.Seconds != 7 {
		t.Errorf("scale wrong: %+v", d)
	}
	sum := b.Add(d)
	if sum.TotalJ() != b.TotalJ()*3 || sum.Seconds != 7 {
		t.Errorf("add wrong: %+v", sum)
	}
	if (Breakdown{}).AvgWatts() != 0 {
		t.Error("zero-duration breakdown must report zero watts")
	}
}
