package workload

import (
	"testing"
)

func TestSuitesComplete(t *testing.T) {
	if got := len(SPEC2006()); got != 21 {
		t.Errorf("Figure 6 plots 21 SPEC applications, got %d", got)
	}
	if got := len(Parallel()); got != 15 {
		t.Errorf("Figure 9 plots 15 parallel applications, got %d", got)
	}
	if got := len(Names()); got != 36 {
		t.Errorf("total %d benchmarks, want 36", got)
	}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range append(SPEC2006(), Parallel()...) {
		m := p.Mix
		sum := m.Load + m.Store + m.Branch + m.Mul + m.Div + m.FPAdd + m.FPMul + m.FPDiv
		if sum <= 0 || sum >= 1 {
			t.Errorf("%s: mix sums to %.2f, must be in (0,1)", p.Name, sum)
		}
		if p.DepMean <= 0 || p.FootprintKB <= 0 || p.CodeKB <= 0 || p.HotKB <= 0 {
			t.Errorf("%s: non-positive profile parameter", p.Name)
		}
		if p.BranchBias < 0.5 || p.BranchBias > 1 {
			t.Errorf("%s: branch bias %v outside [0.5,1]", p.Name, p.BranchBias)
		}
		// Stride takes precedence in the generator; the hot fraction applies
		// to the residual, so each just needs to be a valid probability.
		if p.HotFrac < 0 || p.HotFrac > 1 || p.StrideFrac < 0 || p.StrideFrac > 1 {
			t.Errorf("%s: hot/stride fractions must be probabilities", p.Name)
		}
	}
}

func TestParallelProfilesHaveSharing(t *testing.T) {
	for _, p := range Parallel() {
		if p.SharedFrac <= 0 || p.SerialFrac < 0 {
			t.Errorf("%s: parallel profiles need sharing/serial parameters", p.Name)
		}
	}
	for _, p := range SPEC2006() {
		if p.SharedFrac != 0 {
			t.Errorf("%s: single-threaded profiles must not share", p.Name)
		}
	}
}

func TestBottleneckClassification(t *testing.T) {
	for _, name := range []string{"Mcf", "Lbm", "Libquantum", "Milc", "Gems"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !MemoryBound(p) {
			t.Errorf("%s must classify as memory-bound", name)
		}
	}
	for _, name := range []string{"Gamess", "Hmmer", "Povray", "Gobmk"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if MemoryBound(p) {
			t.Errorf("%s must classify as core-bound", name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("Barnes"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("DOOM"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
	if len(SortedNamesCopy()) != len(Names()) {
		t.Error("sorted copy lost entries")
	}
}
