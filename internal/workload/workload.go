// Package workload defines the benchmark profiles driving the simulator:
// 21 SPEC CPU2006-like single-threaded applications (Figures 6-8) and 15
// SPLASH-2/PARSEC-like parallel applications (Figures 9-10). Each profile
// is a synthetic stand-in whose mix, locality, branch behaviour and sharing
// are set to reproduce the well-documented bottleneck of the original
// program: e.g. mcf and lbm are memory-bound and gain little from core
// frequency, gamess and povray are core-bound and scale with it, gobmk and
// sjeng are misprediction-limited and benefit from the shorter 3D branch
// path.
package workload

import (
	"fmt"
	"sort"

	"vertical3d/internal/trace"
)

// intMix returns an integer-code mix with the given load/store/branch rates.
func intMix(load, store, branch, mul, div float64) trace.Mix {
	return trace.Mix{Load: load, Store: store, Branch: branch, Mul: mul, Div: div}
}

// fpMix returns a floating-point mix.
func fpMix(load, store, branch, fpadd, fpmul, fpdiv float64) trace.Mix {
	return trace.Mix{Load: load, Store: store, Branch: branch, FPAdd: fpadd, FPMul: fpmul, FPDiv: fpdiv}
}

// spec holds the single-threaded profiles in figure order.
var spec = []trace.Profile{
	{Name: "Astar", Mix: intMix(0.28, 0.08, 0.16, 0.01, 0), DepMean: 4.0,
		FootprintKB: 16 << 10, HotFrac: 0.7, HotKB: 16, StrideFrac: 0.15, CodeKB: 24,
		BranchBias: 0.92, FlipRate: 0.03, ComplexFrac: 0.02},
	{Name: "Bzip2", Mix: intMix(0.26, 0.11, 0.13, 0.02, 0), DepMean: 4.5,
		FootprintKB: 4 << 10, HotFrac: 0.75, HotKB: 20, StrideFrac: 0.3, CodeKB: 16,
		BranchBias: 0.95, FlipRate: 0.025, ComplexFrac: 0.03},
	{Name: "Calculix", Mix: fpMix(0.3, 0.09, 0.05, 0.14, 0.14, 0.01), DepMean: 5.5,
		FootprintKB: 2 << 10, HotFrac: 0.85, HotKB: 16, StrideFrac: 0.45, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.03},
	{Name: "Dealii", Mix: fpMix(0.33, 0.1, 0.08, 0.13, 0.12, 0.01), DepMean: 5.0,
		FootprintKB: 8 << 10, HotFrac: 0.75, HotKB: 20, StrideFrac: 0.35, CodeKB: 32,
		BranchBias: 0.98, FlipRate: 0.01, ComplexFrac: 0.04},
	{Name: "Gamess", Mix: fpMix(0.3, 0.09, 0.06, 0.16, 0.16, 0.02), DepMean: 6.0,
		FootprintKB: 512, HotFrac: 0.92, HotKB: 12, StrideFrac: 0.4, CodeKB: 12,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.05},
	{Name: "Gcc", Mix: intMix(0.25, 0.12, 0.15, 0.01, 0), DepMean: 4.2,
		FootprintKB: 8 << 10, HotFrac: 0.65, HotKB: 20, StrideFrac: 0.2, CodeKB: 48,
		BranchBias: 0.98, FlipRate: 0.02, ComplexFrac: 0.06},
	{Name: "Gems", Mix: fpMix(0.34, 0.1, 0.04, 0.15, 0.14, 0.01), DepMean: 5.5,
		FootprintKB: 64 << 10, HotFrac: 0.25, HotKB: 32, StrideFrac: 0.5, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.03},
	{Name: "Gobmk", Mix: intMix(0.25, 0.1, 0.17, 0.01, 0), DepMean: 4.0,
		FootprintKB: 2 << 10, HotFrac: 0.8, HotKB: 16, StrideFrac: 0.15, CodeKB: 32,
		BranchBias: 0.84, FlipRate: 0.05, ComplexFrac: 0.04},
	{Name: "Gromacs", Mix: fpMix(0.29, 0.09, 0.05, 0.15, 0.17, 0.02), DepMean: 5.8,
		FootprintKB: 1 << 10, HotFrac: 0.88, HotKB: 16, StrideFrac: 0.45, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.03},
	{Name: "H264Ref", Mix: intMix(0.32, 0.12, 0.08, 0.03, 0.01), DepMean: 5.2,
		FootprintKB: 1 << 10, HotFrac: 0.85, HotKB: 16, StrideFrac: 0.5, CodeKB: 24,
		BranchBias: 0.98, FlipRate: 0.01, ComplexFrac: 0.05},
	{Name: "Hmmer", Mix: intMix(0.3, 0.13, 0.07, 0.02, 0), DepMean: 6.0,
		FootprintKB: 256, HotFrac: 0.93, HotKB: 10, StrideFrac: 0.5, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.02},
	{Name: "Lbm", Mix: fpMix(0.32, 0.16, 0.02, 0.14, 0.12, 0.01), DepMean: 6.5,
		FootprintKB: 96 << 10, HotFrac: 0.05, HotKB: 16, StrideFrac: 0.75, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.0025, ComplexFrac: 0.01},
	{Name: "Libquantum", Mix: intMix(0.27, 0.09, 0.13, 0.02, 0), DepMean: 6.0,
		FootprintKB: 48 << 10, HotFrac: 0.05, HotKB: 16, StrideFrac: 0.85, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.0025, ComplexFrac: 0.01},
	{Name: "Mcf", Mix: intMix(0.34, 0.1, 0.14, 0.01, 0), DepMean: 2.5,
		FootprintKB: 128 << 10, HotFrac: 0.15, HotKB: 32, StrideFrac: 0.05, CodeKB: 12,
		BranchBias: 0.94, FlipRate: 0.03, ComplexFrac: 0.02},
	{Name: "Milc", Mix: fpMix(0.35, 0.12, 0.03, 0.14, 0.14, 0.01), DepMean: 5.5,
		FootprintKB: 64 << 10, HotFrac: 0.1, HotKB: 24, StrideFrac: 0.6, CodeKB: 12,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.02},
	{Name: "Namd", Mix: fpMix(0.28, 0.08, 0.05, 0.17, 0.18, 0.01), DepMean: 6.0,
		FootprintKB: 1 << 10, HotFrac: 0.88, HotKB: 16, StrideFrac: 0.4, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.02},
	{Name: "Omnetpp", Mix: intMix(0.31, 0.13, 0.14, 0.01, 0), DepMean: 3.5,
		FootprintKB: 32 << 10, HotFrac: 0.4, HotKB: 16, StrideFrac: 0.1, CodeKB: 48,
		BranchBias: 0.96, FlipRate: 0.025, ComplexFrac: 0.05},
	{Name: "Povray", Mix: fpMix(0.28, 0.09, 0.09, 0.15, 0.16, 0.02), DepMean: 5.2,
		FootprintKB: 512, HotFrac: 0.9, HotKB: 12, StrideFrac: 0.3, CodeKB: 24,
		BranchBias: 0.98, FlipRate: 0.01, ComplexFrac: 0.04},
	{Name: "Sjeng", Mix: intMix(0.24, 0.08, 0.17, 0.02, 0), DepMean: 4.0,
		FootprintKB: 8 << 10, HotFrac: 0.78, HotKB: 16, StrideFrac: 0.1, CodeKB: 24,
		BranchBias: 0.86, FlipRate: 0.045, ComplexFrac: 0.03},
	{Name: "Soplex", Mix: fpMix(0.34, 0.09, 0.08, 0.13, 0.12, 0.02), DepMean: 4.5,
		FootprintKB: 48 << 10, HotFrac: 0.3, HotKB: 24, StrideFrac: 0.35, CodeKB: 24,
		BranchBias: 0.98, FlipRate: 0.015, ComplexFrac: 0.03},
	{Name: "Xalancbmk", Mix: intMix(0.32, 0.1, 0.15, 0.01, 0), DepMean: 3.8,
		FootprintKB: 24 << 10, HotFrac: 0.45, HotKB: 16, StrideFrac: 0.12, CodeKB: 48,
		BranchBias: 0.97, FlipRate: 0.02, ComplexFrac: 0.06},
}

// parallel holds the multicore profiles in figure order (12 SPLASH-2 + 3
// PARSEC: Blackscholes, Canneal, Fluidanimate, Streamcluster are PARSEC).
var parallel = []trace.Profile{
	{Name: "Barnes", Mix: fpMix(0.3, 0.1, 0.06, 0.14, 0.14, 0.01), DepMean: 5.0,
		FootprintKB: 8 << 10, HotFrac: 0.7, HotKB: 20, StrideFrac: 0.2, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.01, ComplexFrac: 0.02,
		SharedFrac: 0.18, SharedWriteFrac: 0.2, SerialFrac: 0.04},
	{Name: "Blackscholes", Mix: fpMix(0.27, 0.08, 0.04, 0.16, 0.17, 0.03), DepMean: 6.0,
		FootprintKB: 2 << 10, HotFrac: 0.88, HotKB: 16, StrideFrac: 0.6, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.02,
		SharedFrac: 0.02, SharedWriteFrac: 0.05, SerialFrac: 0.02},
	{Name: "Canneal", Mix: intMix(0.33, 0.11, 0.12, 0.01, 0), DepMean: 3.0,
		FootprintKB: 96 << 10, HotFrac: 0.15, HotKB: 24, StrideFrac: 0.05, CodeKB: 16,
		BranchBias: 0.95, FlipRate: 0.025, ComplexFrac: 0.02,
		SharedFrac: 0.3, SharedWriteFrac: 0.25, SerialFrac: 0.05},
	{Name: "Cholesky", Mix: fpMix(0.32, 0.1, 0.05, 0.15, 0.15, 0.02), DepMean: 5.5,
		FootprintKB: 16 << 10, HotFrac: 0.6, HotKB: 24, StrideFrac: 0.4, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.02,
		SharedFrac: 0.12, SharedWriteFrac: 0.15, SerialFrac: 0.08},
	{Name: "Fft", Mix: fpMix(0.3, 0.12, 0.03, 0.15, 0.16, 0.01), DepMean: 6.0,
		FootprintKB: 32 << 10, HotFrac: 0.2, HotKB: 24, StrideFrac: 0.6, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.0025, ComplexFrac: 0.01,
		SharedFrac: 0.15, SharedWriteFrac: 0.2, SerialFrac: 0.03},
	{Name: "Fluidanimate", Mix: fpMix(0.31, 0.11, 0.07, 0.14, 0.14, 0.02), DepMean: 5.0,
		FootprintKB: 24 << 10, HotFrac: 0.45, HotKB: 20, StrideFrac: 0.3, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.01, ComplexFrac: 0.02,
		SharedFrac: 0.2, SharedWriteFrac: 0.25, SerialFrac: 0.05},
	{Name: "Fmm", Mix: fpMix(0.29, 0.09, 0.06, 0.15, 0.15, 0.01), DepMean: 5.5,
		FootprintKB: 12 << 10, HotFrac: 0.65, HotKB: 24, StrideFrac: 0.25, CodeKB: 16,
		BranchBias: 0.98, FlipRate: 0.01, ComplexFrac: 0.02,
		SharedFrac: 0.15, SharedWriteFrac: 0.15, SerialFrac: 0.05},
	{Name: "Lu", Mix: fpMix(0.31, 0.1, 0.04, 0.16, 0.17, 0.01), DepMean: 5.8,
		FootprintKB: 8 << 10, HotFrac: 0.7, HotKB: 24, StrideFrac: 0.5, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.01,
		SharedFrac: 0.1, SharedWriteFrac: 0.2, SerialFrac: 0.04},
	{Name: "Ocean", Mix: fpMix(0.33, 0.12, 0.04, 0.15, 0.14, 0.01), DepMean: 5.8,
		FootprintKB: 64 << 10, HotFrac: 0.12, HotKB: 24, StrideFrac: 0.65, CodeKB: 12,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.01,
		SharedFrac: 0.2, SharedWriteFrac: 0.25, SerialFrac: 0.03},
	{Name: "Radiosity", Mix: fpMix(0.29, 0.1, 0.08, 0.14, 0.13, 0.01), DepMean: 4.8,
		FootprintKB: 16 << 10, HotFrac: 0.55, HotKB: 20, StrideFrac: 0.2, CodeKB: 24,
		BranchBias: 0.98, FlipRate: 0.015, ComplexFrac: 0.03,
		SharedFrac: 0.22, SharedWriteFrac: 0.15, SerialFrac: 0.06},
	{Name: "Radix", Mix: intMix(0.3, 0.15, 0.06, 0.02, 0), DepMean: 6.2,
		FootprintKB: 48 << 10, HotFrac: 0.1, HotKB: 16, StrideFrac: 0.7, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.01,
		SharedFrac: 0.18, SharedWriteFrac: 0.35, SerialFrac: 0.03},
	{Name: "Raytrace", Mix: fpMix(0.3, 0.08, 0.09, 0.14, 0.15, 0.02), DepMean: 4.5,
		FootprintKB: 24 << 10, HotFrac: 0.5, HotKB: 20, StrideFrac: 0.15, CodeKB: 32,
		BranchBias: 0.98, FlipRate: 0.015, ComplexFrac: 0.03,
		SharedFrac: 0.25, SharedWriteFrac: 0.05, SerialFrac: 0.05},
	{Name: "Streamcluster", Mix: fpMix(0.34, 0.08, 0.05, 0.15, 0.15, 0.01), DepMean: 5.8,
		FootprintKB: 64 << 10, HotFrac: 0.12, HotKB: 16, StrideFrac: 0.6, CodeKB: 8,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.01,
		SharedFrac: 0.25, SharedWriteFrac: 0.1, SerialFrac: 0.04},
	{Name: "Water-Nsquared", Mix: fpMix(0.28, 0.09, 0.05, 0.16, 0.17, 0.02), DepMean: 6.0,
		FootprintKB: 4 << 10, HotFrac: 0.8, HotKB: 20, StrideFrac: 0.35, CodeKB: 12,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.02,
		SharedFrac: 0.12, SharedWriteFrac: 0.15, SerialFrac: 0.04},
	{Name: "Water-Spatial", Mix: fpMix(0.28, 0.09, 0.05, 0.16, 0.17, 0.02), DepMean: 6.0,
		FootprintKB: 6 << 10, HotFrac: 0.78, HotKB: 20, StrideFrac: 0.35, CodeKB: 12,
		BranchBias: 0.98, FlipRate: 0.005, ComplexFrac: 0.02,
		SharedFrac: 0.1, SharedWriteFrac: 0.12, SerialFrac: 0.03},
}

// SPEC2006 returns the 21 single-threaded profiles in figure order.
func SPEC2006() []trace.Profile {
	out := make([]trace.Profile, len(spec))
	copy(out, spec)
	return out
}

// Parallel returns the 15 parallel profiles in figure order.
func Parallel() []trace.Profile {
	out := make([]trace.Profile, len(parallel))
	copy(out, parallel)
	return out
}

// ByName returns the named profile from either suite.
func ByName(name string) (trace.Profile, error) {
	for _, p := range spec {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range parallel {
		if p.Name == name {
			return p, nil
		}
	}
	return trace.Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names, single-threaded first, sorted within
// each suite as the figures order them.
func Names() []string {
	var out []string
	for _, p := range spec {
		out = append(out, p.Name)
	}
	for _, p := range parallel {
		out = append(out, p.Name)
	}
	return out
}

// MemoryBound reports whether the profile's footprint exceeds the L3,
// making it memory-latency dominated.
func MemoryBound(p trace.Profile) bool { return p.FootprintKB > 8<<10 }

// SortedNamesCopy returns a lexically sorted copy of names (test helper).
func SortedNamesCopy() []string {
	n := Names()
	sort.Strings(n)
	return n
}
