package fsio

import (
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// Op names one class of filesystem operation a fault rule can target.
type Op int

const (
	// OpOpen is FS.Open (read-side opens, including directory opens).
	OpOpen Op = iota
	// OpCreate is FS.CreateTemp.
	OpCreate
	// OpWrite is File.Write on files created through the injector.
	OpWrite
	// OpSync is File.Sync (and SyncDir through an injected FS).
	OpSync
	// OpClose is File.Close.
	OpClose
	// OpRename is FS.Rename.
	OpRename
	// OpRead is File.Read.
	OpRead
	// OpMkdir is FS.MkdirAll.
	OpMkdir
	// OpReadDir is FS.ReadDir.
	OpReadDir
	// OpStat is FS.Stat.
	OpStat
	// OpTruncate is FS.Truncate.
	OpTruncate
	opCount
)

// String names the operation for counters and test output.
func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRename:
		return "rename"
	case OpRead:
		return "read"
	case OpMkdir:
		return "mkdir"
	case OpReadDir:
		return "readdir"
	case OpStat:
		return "stat"
	case OpTruncate:
		return "truncate"
	default:
		return "unknown"
	}
}

// Mode is how an injected fault manifests.
type Mode int

const (
	// FailOp fails the operation cleanly with the rule's error and no side
	// effect — the shape of a full disk (ENOSPC) or a dying one (EIO).
	FailOp Mode = iota
	// ShortWrite persists only the first half of the buffer and reports an
	// error with the short count — a crash or disk-full mid-write. Only
	// meaningful on OpWrite rules.
	ShortWrite
	// BitFlip persists the buffer with one deterministic bit flipped and
	// reports success — silent media corruption the caller cannot see
	// until a checksum catches it on read-back. Only meaningful on OpWrite.
	BitFlip
	// TornRename leaves a truncated copy of the source at the destination
	// and fails the rename — the visible wreckage of a crash inside a
	// non-atomic rename. Only meaningful on OpRename rules.
	TornRename
)

// Rule arms one fault: operations of class Op whose path contains Match
// fire with probability P once the first After matching calls have passed,
// at most Limit times.
type Rule struct {
	// Op is the targeted operation class.
	Op Op
	// Mode is how the fault manifests (default FailOp).
	Mode Mode
	// Err is the injected error. Nil picks the mode's natural errno:
	// ENOSPC for writes and short writes, EIO elsewhere.
	Err error
	// P is the per-call fire probability; 0 means 1 (always).
	P float64
	// Match restricts the rule to paths containing this substring
	// ("" matches every path).
	Match string
	// After lets the first After matching calls through un-faulted, so a
	// campaign can poison the middle of a sweep, not its first byte.
	After int
	// Limit caps the number of times the rule fires (0 = unlimited).
	Limit int
}

// err resolves the rule's injected error.
func (r Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	switch r.Mode {
	case FailOp:
		if r.Op == OpWrite || r.Op == OpCreate || r.Op == OpMkdir {
			return syscall.ENOSPC
		}
		return syscall.EIO
	case ShortWrite:
		return syscall.ENOSPC
	default:
		return syscall.EIO
	}
}

// ruleState tracks one armed rule's matching and firing counts.
type ruleState struct {
	Rule
	seen  int
	fired int
}

// Injector is an FS that forwards to a base filesystem while injecting
// deterministic, seeded faults per the armed rules. All decisions draw
// from one seeded rand stream under a mutex, so a single-goroutine
// campaign replays bit-identically for a given (seed, rules, call
// sequence); concurrent campaigns stay reproducible by using P=1 rules
// with After/Limit, which are schedule-independent per matching path.
type Injector struct {
	base FS

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*ruleState
	counts [opCount]int
}

// NewInjector arms rules over base (nil base means OS).
func NewInjector(seed int64, base FS, rules ...Rule) *Injector {
	if base == nil {
		base = OS
	}
	in := &Injector{base: base, rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// decide returns the rule that fires for this (op, path) call, or nil.
// Exactly one rule fires per call: the first armed match wins.
func (in *Injector) decide(op Op, path string) *ruleState {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op || !strings.Contains(path, r.Match) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Limit > 0 && r.fired >= r.Limit {
			continue
		}
		if r.P > 0 && r.P < 1 && in.rng.Float64() >= r.P {
			continue
		}
		r.fired++
		in.counts[op]++
		return r
	}
	return nil
}

// bitIndex draws the deterministic bit position a BitFlip corrupts.
func (in *Injector) bitIndex(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n * 8)
}

// Injected reports how many faults have fired in total.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, c := range in.counts {
		n += c
	}
	return n
}

// InjectedOp reports how many faults have fired for one operation class.
func (in *Injector) InjectedOp(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if op < 0 || op >= opCount {
		return 0
	}
	return in.counts[op]
}

// pathErr wraps an injected error in the *fs.PathError shape the os
// package uses, so guard.Classify and errors.Is/As treat injected faults
// exactly like real ones.
func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

// Open implements FS.
func (in *Injector) Open(name string) (File, error) {
	if r := in.decide(OpOpen, name); r != nil {
		return nil, pathErr("open", name, r.err())
	}
	f, err := in.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := in.decide(OpCreate, dir); r != nil {
		return nil, pathErr("createtemp", dir, r.err())
	}
	f, err := in.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

// Rename implements FS, honouring TornRename rules by leaving a truncated
// copy of the source at the destination before failing.
func (in *Injector) Rename(oldpath, newpath string) error {
	r := in.decide(OpRename, newpath)
	if r == nil {
		return in.base.Rename(oldpath, newpath)
	}
	if r.Mode == TornRename {
		in.tearRename(oldpath, newpath)
	}
	return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: r.err()}
}

// tearRename copies the first half of oldpath to newpath, best-effort —
// the wreckage a crashed non-atomic rename leaves for loaders to reject.
func (in *Injector) tearRename(oldpath, newpath string) {
	src, err := in.base.Open(oldpath)
	if err != nil {
		return
	}
	defer src.Close()
	info, err := in.base.Stat(oldpath)
	if err != nil {
		return
	}
	half := make([]byte, (info.Size()+1)/2)
	if _, err := io.ReadFull(src, half); err != nil {
		return
	}
	tmp, err := in.base.CreateTemp(filepath.Dir(newpath), ".fsio-torn-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(half); err != nil {
		_ = tmp.Close()
		_ = in.base.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		_ = in.base.Remove(tmp.Name())
		return
	}
	_ = in.base.Rename(tmp.Name(), newpath)
}

// Remove implements FS (never faulted: removal is cleanup).
func (in *Injector) Remove(name string) error { return in.base.Remove(name) }

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if r := in.decide(OpMkdir, path); r != nil {
		return pathErr("mkdir", path, r.err())
	}
	return in.base.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if r := in.decide(OpReadDir, name); r != nil {
		return nil, pathErr("readdirent", name, r.err())
	}
	return in.base.ReadDir(name)
}

// Stat implements FS.
func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if r := in.decide(OpStat, name); r != nil {
		return nil, pathErr("stat", name, r.err())
	}
	return in.base.Stat(name)
}

// Truncate implements FS.
func (in *Injector) Truncate(name string, size int64) error {
	if r := in.decide(OpTruncate, name); r != nil {
		return pathErr("truncate", name, r.err())
	}
	return in.base.Truncate(name, size)
}

// injFile wraps a base file, applying write/read/sync/close rules.
type injFile struct {
	f  File
	in *Injector
}

func (f *injFile) Name() string { return f.f.Name() }

// Read implements File.
func (f *injFile) Read(p []byte) (int, error) {
	if r := f.in.decide(OpRead, f.f.Name()); r != nil {
		return 0, pathErr("read", f.f.Name(), r.err())
	}
	return f.f.Read(p)
}

// Write implements File, honouring FailOp, ShortWrite and BitFlip rules.
func (f *injFile) Write(p []byte) (int, error) {
	r := f.in.decide(OpWrite, f.f.Name())
	if r == nil {
		return f.f.Write(p)
	}
	switch r.Mode {
	case ShortWrite:
		n := len(p) / 2
		if n > 0 {
			if m, err := f.f.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, pathErr("write", f.f.Name(), r.err())
	case BitFlip:
		if len(p) == 0 {
			return 0, nil
		}
		// Persist corrupted bytes, report success: the caller finds out
		// only when a checksum rejects the data on read-back.
		bit := f.in.bitIndex(len(p))
		flipped := make([]byte, len(p))
		copy(flipped, p)
		flipped[bit/8] ^= 1 << (bit % 8)
		n, err := f.f.Write(flipped)
		if err != nil {
			return n, err
		}
		return len(p), nil
	default:
		return 0, pathErr("write", f.f.Name(), r.err())
	}
}

// Sync implements File.
func (f *injFile) Sync() error {
	if r := f.in.decide(OpSync, f.f.Name()); r != nil {
		return pathErr("sync", f.f.Name(), r.err())
	}
	return f.f.Sync()
}

// Close implements File.
func (f *injFile) Close() error {
	if r := f.in.decide(OpClose, f.f.Name()); r != nil {
		_ = f.f.Close() // the handle is really released either way
		return pathErr("close", f.f.Name(), r.err())
	}
	return f.f.Close()
}
