// Package fsio is the filesystem seam of the persistence layers. The
// write-ahead journal (internal/journal) and the packed trace files
// (internal/trace) never call the os package directly; they go through the
// FS interface, whose production implementation (OS) is a thin veneer over
// the real filesystem and whose test implementation (Injector) injects
// deterministic, seeded storage faults — ENOSPC, EIO, short writes, torn
// renames, silent post-write bit flips — underneath unmodified production
// code.
//
// The seam covers exactly the operations the persistence layers perform:
// open for read, create-temp for the atomic tmp+fsync+rename pattern,
// rename, remove, mkdir, readdir, stat, truncate, and the per-file
// read/write/sync/close quartet. Nothing else belongs here: code that
// needs more of the os package is not a persistence layer.
//
// The package depends only on the standard library, so every layer of the
// pipeline can import it without cycles.
package fsio

import (
	"io"
	"os"
)

// File is the per-handle surface the persistence layers use: sequential
// reads and writes, durability (Sync), and the handle's path for the
// tmp+rename pattern.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened or created with.
	Name() string
}

// FS is the filesystem seam. All methods mirror their os counterparts,
// including error conventions (*fs.PathError, *os.LinkError wrapping).
type FS interface {
	// Open opens the named file (or directory — directories are opened to
	// fsync the parent after a rename) for reading.
	Open(name string) (File, error)
	// CreateTemp creates a new temporary file in dir, opened for writing,
	// with a name built from pattern — the first half of the atomic
	// tmp+fsync+rename publish.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
}

// OS is the production filesystem: every call forwards to the os package.
var OS FS = osFS{}

// osFS implements FS on the real filesystem.
type osFS struct{}

func (osFS) Open(name string) (File, error) {
	return os.Open(name)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir fsyncs a directory through fs, persisting directory entries
// (renames, new files) on filesystems that require an explicit parent
// fsync for them to survive a crash. Failures are reported, not fatal:
// every caller treats the parent fsync as best-effort hardening.
func SyncDir(fs FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}
