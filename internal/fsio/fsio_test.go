package fsio

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
)

// writeThrough creates path through f and writes data, returning the write
// and close errors separately so tests can assert on each.
func writeThrough(t *testing.T, fsys FS, dir, name string, data []byte) (writeErr, closeErr error, path string) {
	t.Helper()
	tmp, err := fsys.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	_, writeErr = tmp.Write(data)
	closeErr = tmp.Close()
	path = tmp.Name()
	if writeErr == nil && closeErr == nil {
		if err := fsys.Rename(path, filepath.Join(dir, name)); err == nil {
			path = filepath.Join(dir, name)
		}
	}
	return writeErr, closeErr, path
}

// TestOSRoundTrip proves the production FS is a faithful os veneer.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	werr, cerr, path := writeThrough(t, OS, dir, "x.bin", []byte("hello"))
	if werr != nil || cerr != nil {
		t.Fatalf("write/close: %v / %v", werr, cerr)
	}
	f, err := OS.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := SyncDir(OS, dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := OS.Truncate(path, 2); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	info, err := OS.Stat(path)
	if err != nil || info.Size() != 2 {
		t.Fatalf("Stat after truncate: %v, %v", info, err)
	}
	entries, err := OS.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir: %v, %v", entries, err)
	}
	if err := OS.Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

// TestInjectENOSPC proves a FailOp write rule surfaces ENOSPC through the
// *fs.PathError shape the os package uses.
func TestInjectENOSPC(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(1, OS, Rule{Op: OpWrite})
	werr, _, _ := writeThrough(t, in, dir, "x.bin", []byte("doomed"))
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", werr)
	}
	var pe *fs.PathError
	if !errors.As(werr, &pe) {
		t.Fatalf("want *fs.PathError, got %T", werr)
	}
	if in.InjectedOp(OpWrite) != 1 {
		t.Fatalf("injected count = %d", in.InjectedOp(OpWrite))
	}
}

// TestInjectShortWrite proves half the buffer lands on disk and the error
// carries the short count.
func TestInjectShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(1, OS, Rule{Op: OpWrite, Mode: ShortWrite})
	tmp, err := in.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	n, werr := tmp.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("want (5, ENOSPC), got (%d, %v)", n, werr)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(tmp.Name())
	if err != nil || string(got) != "01234" {
		t.Fatalf("on disk %q, %v", got, err)
	}
}

// TestInjectBitFlip proves a flipped write reports success while the bytes
// on disk differ from the buffer by exactly one bit.
func TestInjectBitFlip(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(7, OS, Rule{Op: OpWrite, Mode: BitFlip, Limit: 1})
	data := bytes.Repeat([]byte{0x00}, 64)
	werr, cerr, path := writeThrough(t, in, dir, "x.bin", data)
	if werr != nil || cerr != nil {
		t.Fatalf("bit-flip write must report success, got %v / %v", werr, cerr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, b := range got {
		for ; b != 0; b &= b - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("want exactly 1 flipped bit, got %d", flipped)
	}
}

// TestInjectTornRename proves the destination holds a truncated copy and
// the rename error is an *os.LinkError.
func TestInjectTornRename(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(1, OS, Rule{Op: OpRename, Mode: TornRename})
	tmp, err := in.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst.bin")
	rerr := in.Rename(tmp.Name(), dst)
	var le *os.LinkError
	if !errors.As(rerr, &le) || !errors.Is(rerr, syscall.EIO) {
		t.Fatalf("want LinkError(EIO), got %v", rerr)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("torn destination missing: %v", err)
	}
	if string(got) != "01234" {
		t.Fatalf("torn destination %q", got)
	}
}

// TestAfterAndLimit proves the gating knobs: After skips, Limit caps.
func TestAfterAndLimit(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(1, OS, Rule{Op: OpWrite, After: 2, Limit: 1})
	tmp, err := in.CreateTemp(dir, ".t-*")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	results := make([]error, 4)
	for i := range results {
		_, results[i] = tmp.Write([]byte("x"))
	}
	for i, want := range []bool{false, false, true, false} {
		if got := results[i] != nil; got != want {
			t.Fatalf("write %d: fault=%v, want %v (%v)", i, got, want, results[i])
		}
	}
}

// TestMatchScoping proves rules fire only on matching paths.
func TestMatchScoping(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(1, OS, Rule{Op: OpOpen, Match: ".m3dj"})
	if _, err := in.Open(filepath.Join(dir, "nope.m3dj")); err == nil {
		t.Fatal("matching open must fault")
	}
	werr, cerr, path := writeThrough(t, OS, dir, "ok.txt", []byte("x"))
	if werr != nil || cerr != nil {
		t.Fatal(werr, cerr)
	}
	f, err := in.Open(path)
	if err != nil {
		t.Fatalf("non-matching open must pass: %v", err)
	}
	f.Close()
}

// TestSeededDeterminism proves two injectors with the same seed and rules
// make identical probabilistic decisions over the same call sequence.
func TestSeededDeterminism(t *testing.T) {
	decide := func(seed int64) []bool {
		in := NewInjector(seed, OS, Rule{Op: OpStat, P: 0.5})
		out := make([]bool, 64)
		for i := range out {
			_, err := in.Stat("/definitely/missing")
			out[i] = err != nil && errors.Is(err, syscall.EIO)
		}
		return out
	}
	a, b := decide(42), decide(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under the same seed", i)
		}
	}
	c := decide(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-call decision streams")
	}
}

// TestConcurrentInjector exercises the injector from many goroutines for
// the race detector.
func TestConcurrentInjector(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(1, OS, Rule{Op: OpWrite, P: 0.5}, Rule{Op: OpSync, P: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tmp, err := in.CreateTemp(dir, ".t-*")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 50; i++ {
				_, _ = tmp.Write([]byte("payload"))
				_ = tmp.Sync()
			}
			_ = tmp.Close()
		}()
	}
	wg.Wait()
	if in.Injected() == 0 {
		t.Fatal("no faults fired across 400 p=0.5 writes")
	}
}
