package trace

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestReplayMatchesGenerator is the packed-encoding differential oracle:
// a replayer over a recording must reproduce the generator's stream
// instruction by instruction, including past the recorded length (the
// on-demand extension path).
func TestReplayMatchesGenerator(t *testing.T) {
	const recorded, replayed = 10_000, 25_000 // force two extensions
	p := testProfile()
	rec := Record(p, 7, 3, recorded)
	if rec.Len() != recorded {
		t.Fatalf("Record materialised %d instructions, want %d", rec.Len(), recorded)
	}
	want := NewGenerator(p, 7, 3)
	r := NewReplayer(rec)
	for i := 0; i < replayed; i++ {
		g, got := want.Next(), r.Next()
		if got != g {
			t.Fatalf("instruction %d differs: replay %+v vs generate %+v", i, got, g)
		}
	}
	if r.Pos() != replayed {
		t.Fatalf("Pos() = %d, want %d", r.Pos(), replayed)
	}
	if rec.Len() < replayed {
		t.Fatalf("recording did not extend: Len() = %d < %d", rec.Len(), replayed)
	}
}

// TestReplayerBatchSizesAgree replays the same recording with Next and
// with NextBatch at awkward batch sizes; every variant must agree.
func TestReplayerBatchSizesAgree(t *testing.T) {
	const n = 8192
	p := testProfile()
	rec := Record(p, 11, 0, n/2) // half-sized so batches cross the extension
	ref := make([]Inst, n)
	NewGenerator(p, 11, 0).NextBatch(ref)
	for _, batch := range []int{1, 3, 7, 64, 333, n} {
		r := NewReplayer(rec)
		buf := make([]Inst, batch)
		for pos := 0; pos < n; {
			k := min(batch, n-pos)
			if got := r.NextBatch(buf[:k]); got != k {
				t.Fatalf("batch=%d: NextBatch returned %d, want %d", batch, got, k)
			}
			for i := 0; i < k; i++ {
				if buf[i] != ref[pos+i] {
					t.Fatalf("batch=%d: instruction %d differs", batch, pos+i)
				}
			}
			pos += k
		}
	}
}

// TestRecorderAppendRoundTrip packs a hand-rolled stream through the
// Recorder and checks the packed decode is exact for extreme field values.
func TestRecorderAppendRoundTrip(t *testing.T) {
	ins := []Inst{
		{PC: 0, Kind: ALU, Src1: -1, Src2: -1, Dst: -1},
		{PC: ^uint64(0), Addr: ^uint64(0), Target: ^uint64(0), Kind: Branch, Taken: true, Src1: 32767, Src2: -32768, Dst: 0},
		{PC: 0x40_0000, Kind: Store, Addr: 0x7000_0123, Complex: true, Src1: 5, Src2: -1, Dst: -1},
		{PC: 0x40_0004, Kind: Load, Addr: 0x1000_0040, Dst: 17, Src1: 3, Src2: -1, Taken: false, Complex: false},
	}
	rc := NewRecorder(len(ins))
	for _, in := range ins {
		rc.Append(in)
	}
	if rc.Len() != len(ins) {
		t.Fatalf("Recorder.Len() = %d, want %d", rc.Len(), len(ins))
	}
	rec := rc.Finish(testProfile(), 1, 0)
	for i, want := range ins {
		if got := rec.At(i); got != want {
			t.Fatalf("instruction %d round-trip: got %+v want %+v", i, got, want)
		}
	}
	if want := len(ins) * 31; rec.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d (31 per instruction)", rec.Bytes(), want)
	}
}

// TestConcurrentReplayAndExtension hammers one recording from many
// replayers with random batch sizes while the recording extends under
// them; every replayer must observe the reference stream. Run under -race
// in CI, this is the shared-recording safety proof.
func TestConcurrentReplayAndExtension(t *testing.T) {
	const n = 30_000
	p := testProfile()
	ref := make([]Inst, n)
	NewGenerator(p, 5, 1).NextBatch(ref)
	rec := Record(p, 5, 1, 1_000) // small so every replayer triggers extension

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			r := NewReplayer(rec)
			buf := make([]Inst, 512)
			for pos := 0; pos < n; {
				k := min(1+rng.Intn(len(buf)), n-pos)
				r.NextBatch(buf[:k])
				for i := 0; i < k; i++ {
					if buf[i] != ref[pos+i] {
						errs <- "replayer diverged from reference stream"
						return
					}
				}
				pos += k
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestFileRoundTrip encodes a recording, decodes it, and checks identity,
// payload equality and post-load extension (which rebuilds the generator
// from the stored profile and fast-forwards it).
func TestFileRoundTrip(t *testing.T) {
	const n = 4_000
	p := testProfile()
	rec := Record(p, 9, 2, n)
	var buf bytes.Buffer
	if err := rec.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile() != p || got.Seed() != 9 || got.Stream() != 2 || got.Len() != n {
		t.Fatalf("decoded identity mismatch: %+v seed=%d stream=%d n=%d", got.Profile(), got.Seed(), got.Stream(), got.Len())
	}
	// Read past the stored length: the loaded recording must rebuild its
	// generator and keep matching the original stream.
	want := NewGenerator(p, 9, 2)
	r := NewReplayer(got)
	for i := 0; i < 2*n; i++ {
		if g, x := want.Next(), r.Next(); x != g {
			t.Fatalf("instruction %d differs after file round-trip", i)
		}
	}
}

// TestReadRecordingRejectsGarbage checks magic and header validation.
func TestReadRecordingRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTTRACE\x00\x00\x00\x00"),
		"truncated": []byte(fileMagic + "\xff\xff\x00\x00"),
	} {
		if _, err := ReadRecording(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadRecording accepted garbage", name)
		}
	}
}

// TestSaveLoadFile exercises the atomic file writer and loader on disk.
func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	p := testProfile()
	rec := Record(p, 3, 0, 1_000)
	path := filepath.Join(dir, FileName(p, 3, 0))
	if err := SaveFile(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1_000; i++ {
		if got.At(i) != rec.At(i) {
			t.Fatalf("instruction %d differs after save/load", i)
		}
	}
	// No stray temp files from the atomic writer.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache dir holds %d entries, want 1 (temp file leaked?)", len(entries))
	}
}

// TestFileNameDistinguishesProfiles ensures two profiles that share a Name
// but differ in any statistical field get distinct cache files.
func TestFileNameDistinguishesProfiles(t *testing.T) {
	a := testProfile()
	b := testProfile()
	b.DepMean++
	if FileName(a, 1, 0) == FileName(b, 1, 0) {
		t.Fatal("distinct profiles with the same Name mapped to the same file")
	}
	if FileName(a, 1, 0) != FileName(a, 1, 0) {
		t.Fatal("FileName is not deterministic")
	}
	if FileName(a, 1, 0) == FileName(a, 2, 0) || FileName(a, 1, 0) == FileName(a, 1, 1) {
		t.Fatal("seed/stream not reflected in the file name")
	}
}
