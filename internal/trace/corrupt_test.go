package trace

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"vertical3d/internal/fsio"
)

// TestLoadRejectsBitFlippedLanes proves the CRC trailer catches a single
// flipped bit anywhere in the lane payload and tags the error with both
// ErrCorrupt and the recording's identity.
func TestLoadRejectsBitFlippedLanes(t *testing.T) {
	dir := t.TempDir()
	p := testProfile()
	rec := Record(p, 42, 0, 512)
	path := filepath.Join(dir, FileName(p, 42, 0))
	if err := SaveFile(path, rec); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the middle of the lane section (well past the JSON
	// header, well before the trailer).
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = LoadFile(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	for _, want := range []string{p.Name, "seed=42", "stream=0", "checksum"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error not identity-tagged, missing %q: %v", want, err)
		}
	}
}

// TestLoadRejectsTruncatedTrailer proves a file cut before the checksum —
// the wreckage of a torn rename — is rejected, not trusted.
func TestLoadRejectsTruncatedTrailer(t *testing.T) {
	dir := t.TempDir()
	p := testProfile()
	rec := Record(p, 42, 0, 128)
	path := filepath.Join(dir, FileName(p, 42, 0))
	if err := SaveFile(path, rec); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatal("truncated trailer accepted")
	}
}

// TestSharedRecordingFallsBackOnCorruptFile proves the single-flight cache
// regenerates in memory when the cache file is damaged, counts the load
// error, and still returns a bit-identical stream.
func TestSharedRecordingFallsBackOnCorruptFile(t *testing.T) {
	ResetCache()
	defer ResetCache()
	dir := t.TempDir()
	if err := SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer SetCacheDir("")

	p := testProfile()
	want := Record(p, 42, 0, 256)
	path := filepath.Join(dir, FileName(p, 42, 0))
	if err := SaveFile(path, want); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x80
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	got := SharedRecording(p, 42, 0, 256)
	if got == nil {
		t.Fatal("no recording")
	}
	wr, gr := NewReplayer(want), NewReplayer(got)
	for i := 0; i < 256; i++ {
		a, b := wr.Next(), gr.Next()
		if a != b {
			t.Fatalf("instr %d differs after fallback: %+v vs %+v", i, a, b)
		}
	}
	s := CacheStats()
	if s.LoadErrors != 1 || s.FileLoads != 0 {
		t.Fatalf("load-error accounting: %+v", s)
	}
}

// TestSharedRecordingSurvivesFlakyTraceDir proves injected read faults on
// the cache directory degrade to generation, and injected save faults are
// counted but never fatal.
func TestSharedRecordingSurvivesFlakyTraceDir(t *testing.T) {
	ResetCache()
	defer ResetCache()
	dir := t.TempDir()
	in := fsio.NewInjector(3, fsio.OS,
		fsio.Rule{Op: fsio.OpOpen, Match: ".m3dtrace", Err: syscall.EIO},
		fsio.Rule{Op: fsio.OpSync, Match: ".m3dtrace", Err: syscall.EIO},
	)
	SetFS(in)
	defer SetFS(nil)
	if err := SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	defer SetCacheDir("")

	p := testProfile()
	got := SharedRecording(p, 42, 0, 256)
	if got == nil {
		t.Fatal("flaky dir killed the recording path")
	}
	SetFS(nil)
	want := Record(p, 42, 0, 256)
	wr, gr := NewReplayer(want), NewReplayer(got)
	for i := 0; i < 256; i++ {
		if wr.Next() != gr.Next() {
			t.Fatalf("instr %d differs under fault injection", i)
		}
	}
	s := CacheStats()
	if s.SaveErrors != 1 {
		t.Fatalf("failed save not counted: %+v", s)
	}
	// The open fault fires on a file that was never written (the save
	// failed), so it reads as absent-vs-corrupt depending on timing; what
	// matters is the sweep got its stream.
}
