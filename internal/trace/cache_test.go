package trace

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestSharedRecordingIdentityAndCounters checks the keyed cache returns
// one shared recording per (profile, seed, stream) and counts hits/misses
// like the sram model cache it is modelled on.
func TestSharedRecordingIdentityAndCounters(t *testing.T) {
	ResetCache()
	defer ResetCache()
	p := testProfile()

	a := SharedRecording(p, 42, 0, 1_000)
	b := SharedRecording(p, 42, 0, 1_000)
	if a != b {
		t.Fatal("same key returned distinct recordings")
	}
	if c := SharedRecording(p, 42, 1, 1_000); c == a {
		t.Fatal("different stream returned the same recording")
	}
	if d := SharedRecording(p, 43, 0, 1_000); d == a {
		t.Fatal("different seed returned the same recording")
	}
	q := p
	q.BranchBias = 0.51
	if e := SharedRecording(q, 42, 0, 1_000); e == a {
		t.Fatal("different profile returned the same recording")
	}
	st := CacheStats()
	if st.Misses != 4 || st.Hits != 1 {
		t.Fatalf("CacheStats = %+v, want 4 misses / 1 hit", st)
	}
	if CachedBytes() < 4*1_000*31 {
		t.Fatalf("CachedBytes = %d, want at least %d", CachedBytes(), 4*1_000*31)
	}

	ResetCache()
	if st := CacheStats(); st != (CacheCounters{}) {
		t.Fatalf("CacheStats after reset = %+v, want zeroes", st)
	}
	if f := SharedRecording(p, 42, 0, 1_000); f == a {
		t.Fatal("ResetCache did not evict the recording")
	}
}

// TestSharedRecordingSingleFlight launches racing lookups of one cold key;
// every caller must get the same recording and the stream must be correct
// (the single-flight winner records once, everyone else waits).
func TestSharedRecordingSingleFlight(t *testing.T) {
	ResetCache()
	defer ResetCache()
	p := testProfile()

	const workers = 16
	recs := make([]*Recording, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			recs[w] = SharedRecording(p, 77, 0, 2_000)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if recs[w] != recs[0] {
			t.Fatal("racing callers received distinct recordings")
		}
	}
	st := CacheStats()
	if st.Hits+st.Misses != workers || st.Misses != 1 {
		t.Fatalf("CacheStats = %+v, want exactly 1 miss out of %d lookups", st, workers)
	}
	want := NewGenerator(p, 77, 0)
	r := NewReplayer(recs[0])
	for i := 0; i < 2_000; i++ {
		if g, x := want.Next(), r.Next(); x != g {
			t.Fatalf("instruction %d of the single-flight recording differs", i)
		}
	}
}

// TestCacheDirSaveAndLoad simulates two runs sharing a -trace-dir: the
// first records and saves, the second (fresh in-memory cache) loads the
// file instead of regenerating, bit-identically.
func TestCacheDirSaveAndLoad(t *testing.T) {
	dir := t.TempDir()
	ResetCache()
	defer func() {
		ResetCache()
		if err := SetCacheDir(""); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	if CacheDir() != dir {
		t.Fatalf("CacheDir() = %q, want %q", CacheDir(), dir)
	}
	p := testProfile()

	// Run 1: miss → record → save.
	first := SharedRecording(p, 42, 0, 1_500)
	path := filepath.Join(dir, FileName(p, 42, 0))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("recording was not saved to the cache dir: %v", err)
	}
	if st := CacheStats(); st.FileLoads != 0 || st.SaveErrors != 0 {
		t.Fatalf("run 1 CacheStats = %+v, want no file loads and no save errors", st)
	}

	// Run 2: fresh process (in-memory cache emptied) → file load.
	ResetCache()
	second := SharedRecording(p, 42, 0, 1_500)
	if st := CacheStats(); st.FileLoads != 1 {
		t.Fatalf("run 2 CacheStats = %+v, want 1 file load", st)
	}
	if second == first {
		t.Fatal("run 2 should hold a freshly loaded recording")
	}
	for i := 0; i < 1_500; i++ {
		if first.At(i) != second.At(i) {
			t.Fatalf("instruction %d differs between recorded and file-loaded runs", i)
		}
	}
	// Extension past the stored length still matches generation.
	want := NewGenerator(p, 42, 0)
	r := NewReplayer(second)
	for i := 0; i < 3_000; i++ {
		if g, x := want.Next(), r.Next(); x != g {
			t.Fatalf("instruction %d differs after post-load extension", i)
		}
	}
}

// TestCacheDirIgnoresMismatchedFile plants a file whose name matches a key
// but whose header identity differs; the loader must reject it and record
// fresh rather than replay a wrong stream.
func TestCacheDirIgnoresMismatchedFile(t *testing.T) {
	dir := t.TempDir()
	ResetCache()
	defer func() {
		ResetCache()
		if err := SetCacheDir(""); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	p := testProfile()

	// A recording of a DIFFERENT stream saved under this key's file name.
	wrong := Record(p, 99, 9, 500)
	if err := SaveFile(filepath.Join(dir, FileName(p, 42, 0)), wrong); err != nil {
		t.Fatal(err)
	}
	rec := SharedRecording(p, 42, 0, 500)
	if st := CacheStats(); st.FileLoads != 0 {
		t.Fatalf("mismatched file was trusted: %+v", st)
	}
	want := NewGenerator(p, 42, 0)
	for i := 0; i < 500; i++ {
		if g := want.Next(); rec.At(i) != g {
			t.Fatalf("instruction %d wrong after rejecting mismatched file", i)
		}
	}
}

// TestSetCacheDirCreatesDirectory checks the directory is created and that
// an uncreatable path errors.
func TestSetCacheDirCreatesDirectory(t *testing.T) {
	base := t.TempDir()
	defer func() {
		if err := SetCacheDir(""); err != nil {
			t.Fatal(err)
		}
	}()
	nested := filepath.Join(base, "a", "b", "traces")
	if err := SetCacheDir(nested); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(nested); err != nil || !fi.IsDir() {
		t.Fatalf("cache dir was not created: %v", err)
	}
	// A path under a regular file cannot be created.
	file := filepath.Join(base, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SetCacheDir(filepath.Join(file, "sub")); err == nil {
		t.Fatal("SetCacheDir under a regular file should fail")
	}
}
