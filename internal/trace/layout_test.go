package trace

import (
	"testing"
	"unsafe"
)

// TestInstLayout pins the field-reordered Inst to 40 bytes (three uint64
// words, three int16 registers, three single-byte fields, 7-byte tail
// pad). The grouping-by-meaning order used before the reorder cost 48
// bytes; a regression here means a field was added or moved without
// re-checking the padding.
func TestInstLayout(t *testing.T) {
	const want = 40
	if got := unsafe.Sizeof(Inst{}); got != want {
		t.Fatalf("unsafe.Sizeof(Inst{}) = %d, want %d — keep fields ordered widest-first", got, want)
	}
	if got := unsafe.Alignof(Inst{}); got != 8 {
		t.Fatalf("unsafe.Alignof(Inst{}) = %d, want 8", got)
	}
	// The three word lanes must lead so the int16/byte tail shares one pad.
	var in Inst
	if off := unsafe.Offsetof(in.PC); off != 0 {
		t.Errorf("PC offset = %d, want 0", off)
	}
	if off := unsafe.Offsetof(in.Addr); off != 8 {
		t.Errorf("Addr offset = %d, want 8", off)
	}
	if off := unsafe.Offsetof(in.Target); off != 16 {
		t.Errorf("Target offset = %d, want 16", off)
	}
	if off := unsafe.Offsetof(in.Src1); off != 24 {
		t.Errorf("Src1 offset = %d, want 24", off)
	}
}

// TestPackedMetaRoundTrip checks the meta byte can represent every Kind
// alongside the two flags.
func TestPackedMetaRoundTrip(t *testing.T) {
	if numKinds > metaKindMask+1 {
		t.Fatalf("numKinds = %d no longer fits the meta byte's %d kind slots", numKinds, metaKindMask+1)
	}
	for k := Kind(0); k < numKinds; k++ {
		for _, taken := range []bool{false, true} {
			for _, complex := range []bool{false, true} {
				in := Inst{Kind: k, Taken: taken, Complex: complex}
				m := packMeta(in)
				if Kind(m&metaKindMask) != k || (m&metaTaken != 0) != taken || (m&metaComplex != 0) != complex {
					t.Fatalf("meta byte round-trip failed for kind=%v taken=%v complex=%v", k, taken, complex)
				}
			}
		}
	}
}
