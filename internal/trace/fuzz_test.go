package trace

import (
	"math"
	"testing"
)

// FuzzGenerator feeds adversarial workload profiles to the trace generator
// and asserts it never panics and always emits well-formed instructions:
// kinds in range, register indices inside the architectural file, branch
// PCs/targets inside the code segment. Degenerate profiles (zero or
// negative footprints, NaN rates, biased-past-1 mixes) must degrade to a
// boring-but-valid stream, not crash the simulator mid-sweep.
func FuzzGenerator(f *testing.F) {
	f.Add(int64(42), 0, 16384, 0.28, 0.12, 0.15, 6.0, 0.92, 0.02, 0.3, 64, 32, 0.15, 0.05, 0.3, 0.1)
	f.Add(int64(1), 3, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0, 0.0, 0.0, 0.0, 0.0)
	f.Add(int64(-7), -1, -8, 1.5, 1.5, 1.5, -3.0, 2.0, -1.0, 2.0, -64, -1, 1.5, 1.5, 1.5, 1.5)
	f.Add(int64(0), 1000, 1<<20, math.NaN(), 0.2, 0.1, math.NaN(), math.Inf(1), math.NaN(), 0.5, 1<<20, 1, math.Inf(-1), 0.2, 0.9, 0.5)

	f.Fuzz(func(t *testing.T, seed int64, threadID, footKB int,
		load, store, branch, depMean, bias, flip, stride float64,
		codeKB, hotKB int, hotFrac, complexFrac, sharedFrac, serialFrac float64) {
		// Keep allocations bounded; adversarial shapes, not adversarial sizes.
		if codeKB > 1<<20 || codeKB < math.MinInt32 {
			codeKB %= 1 << 20
		}
		if footKB > 1<<20 || footKB < math.MinInt32 {
			footKB %= 1 << 20
		}
		if hotKB > 1<<20 || hotKB < math.MinInt32 {
			hotKB %= 1 << 20
		}
		p := Profile{
			Name:        "fuzz",
			Mix:         Mix{Load: load, Store: store, Branch: branch},
			DepMean:     depMean,
			FootprintKB: footKB,
			HotFrac:     hotFrac,
			HotKB:       hotKB,
			StrideFrac:  stride,
			CodeKB:      codeKB,
			BranchBias:  bias,
			FlipRate:    flip,
			ComplexFrac: complexFrac,
			SharedFrac:  sharedFrac,
			SerialFrac:  serialFrac,
		}
		g := NewGenerator(p, seed, threadID) // must not panic
		codeLimit := uint64(0x0040_0000) + uint64(max(codeKB, 1))*1024
		for i := 0; i < 2000; i++ {
			in := g.Next() // must not panic
			if in.Kind >= numKinds {
				t.Fatalf("instruction %d: kind %d out of range", i, in.Kind)
			}
			for _, r := range []int16{in.Src1, in.Src2, in.Dst} {
				if r < -1 || r >= 64 {
					t.Fatalf("instruction %d: register %d out of range", i, r)
				}
			}
			if in.Kind == Branch {
				if in.PC < 0x0040_0000 || in.PC >= codeLimit {
					t.Fatalf("instruction %d: branch PC %#x outside code segment", i, in.PC)
				}
				if in.Target < 0x0040_0000 || in.Target >= codeLimit {
					t.Fatalf("instruction %d: branch target %#x outside code segment", i, in.Target)
				}
			}
		}
	})
}
