// Binary trace files persist packed recordings across runs (-trace-dir in
// coresim/mcsim/m3dcli). The format is deliberately simple and versioned:
//
//	offset  size  field
//	0       8     magic "M3DTRC02"
//	8       4     header length H (little-endian uint32)
//	12      H     JSON header {Profile, Seed, Stream, N}
//	12+H    N*8   PC lane      (little-endian uint64)
//	...     N*8   Addr lane
//	...     N*8   Target lane
//	...     N*2   Src1 lane    (little-endian int16, two's complement)
//	...     N*2   Src2 lane
//	...     N*2   Dst lane
//	...     N*1   meta lane    (Kind | Taken<<4 | Complex<<5)
//	...     4     CRC32 (IEEE) of all lane bytes (little-endian uint32)
//
// The trailing checksum covers every lane byte, so a bit flip anywhere in
// the payload makes the loader reject the file (ErrCorrupt) instead of
// replaying garbage into a sweep; the single-flight cache then regenerates
// the stream in memory. Version 01 files (no checksum) are rejected by the
// magic and regenerated the same way — recordings are pure functions of
// their identity, so nothing is lost.
//
// The JSON header carries the full Profile so a loaded recording can
// lazily rebuild its generator and extend past N on demand. Files are
// named by FileName, which folds an FNV-64a hash of the whole identity
// triple into the name, so two profiles sharing a Name never collide; the
// loader additionally re-verifies the identity before trusting a file.
//
// All file access goes through the internal/fsio seam (SetFS), so chaos
// tests inject storage faults underneath unmodified production code.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"path/filepath"
	"strings"
	"sync"

	"vertical3d/internal/fsio"
)

const fileMagic = "M3DTRC02"

// ErrCorrupt tags recordings rejected by the lane checksum (or any other
// structural damage past the magic). Callers that see it fall back to
// in-memory generation; errors.Is(err, ErrCorrupt) distinguishes a damaged
// file from a merely absent one.
var ErrCorrupt = errors.New("corrupt recording")

var (
	fsMu    sync.RWMutex
	traceFS fsio.FS = fsio.OS
)

// SetFS routes the trace file layer through an explicit filesystem seam
// (chaos tests pass an *fsio.Injector; nil restores the real filesystem).
// Package-level because the recording cache is process-global.
func SetFS(fs fsio.FS) {
	if fs == nil {
		fs = fsio.OS
	}
	fsMu.Lock()
	traceFS = fs
	fsMu.Unlock()
}

// getFS returns the current filesystem seam.
func getFS() fsio.FS {
	fsMu.RLock()
	defer fsMu.RUnlock()
	return traceFS
}

// fileHeader is the JSON header of a trace file.
type fileHeader struct {
	Profile Profile
	Seed    int64
	Stream  int
	N       int
}

// FileName returns the canonical cache-directory file name for a stream:
// "<profile>_s<seed>_t<stream>_<fnv64 of the full identity>.m3dtrace".
func FileName(prof Profile, seed int64, stream int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d|%d", prof, seed, stream)
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, prof.Name)
	return fmt.Sprintf("%s_s%d_t%d_%016x.m3dtrace", name, seed, stream, h.Sum64())
}

// Encode serialises the recording's current snapshot, appending the CRC32
// of the lane bytes so loaders can reject silent corruption.
func (r *Recording) Encode(w io.Writer) error {
	p := r.snap.Load()
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(fileHeader{Profile: r.prof, Seed: r.seed, Stream: r.stream, N: p.n})
	if err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hdr))); err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	lanes := io.MultiWriter(bw, crc)
	for _, lane := range []any{p.pc, p.addr, p.target, p.src1, p.src2, p.dst, p.meta} {
		if err := binary.Write(lanes, binary.LittleEndian, lane); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadRecording deserialises a recording, verifying the lane checksum. The
// result extends on demand like any other recording: its generator is
// rebuilt lazily from the header's identity triple on the first read past
// N. A checksum mismatch returns an identity-tagged error wrapping
// ErrCorrupt.
func ReadRecording(r io.Reader) (*Recording, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, fileMagic)
	}
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("trace: read header length: %w", err)
	}
	if hlen == 0 || hlen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible header length %d", hlen)
	}
	hdrBytes := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdrBytes); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	var hdr fileHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if hdr.N < 0 || hdr.N > 1<<31 {
		return nil, fmt.Errorf("trace: implausible instruction count %d", hdr.N)
	}
	p := &packed{
		n:      hdr.N,
		pc:     make([]uint64, hdr.N),
		addr:   make([]uint64, hdr.N),
		target: make([]uint64, hdr.N),
		src1:   make([]int16, hdr.N),
		src2:   make([]int16, hdr.N),
		dst:    make([]int16, hdr.N),
		meta:   make([]uint8, hdr.N),
	}
	crc := crc32.NewIEEE()
	lanes := io.TeeReader(br, crc)
	for _, lane := range []any{p.pc, p.addr, p.target, p.src1, p.src2, p.dst, p.meta} {
		if err := binary.Read(lanes, binary.LittleEndian, lane); err != nil {
			return nil, fmt.Errorf("trace: read lanes: %w", err)
		}
	}
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, fmt.Errorf("trace: read lane checksum: %w", err)
	}
	if got := crc.Sum32(); got != want {
		return nil, fmt.Errorf("trace: %w: %s seed=%d stream=%d n=%d: lane checksum %08x != %08x",
			ErrCorrupt, hdr.Profile.Name, hdr.Seed, hdr.Stream, hdr.N, got, want)
	}
	rec := &Recording{prof: hdr.Profile, seed: hdr.Seed, stream: hdr.Stream}
	rec.snap.Store(p)
	return rec, nil
}

// SaveFile writes the recording to path durably and atomically: temp file,
// fsync, rename, then a best-effort fsync of the parent directory so the
// rename itself survives a crash — the same contract as a journal segment
// publish. A concurrent or crashed writer never leaves a torn file for a
// later LoadFile to trust.
func SaveFile(path string, rec *Recording) error {
	fsys := getFS()
	tmp, err := fsys.CreateTemp(filepath.Dir(path), ".m3dtrace-*")
	if err != nil {
		return err
	}
	defer func() { _ = fsys.Remove(tmp.Name()) }() // no-op after successful rename
	if err := rec.Encode(tmp); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	_ = fsio.SyncDir(fsys, filepath.Dir(path))
	return nil
}

// LoadFile reads a recording from path.
func LoadFile(path string) (*Recording, error) {
	f, err := getFS().Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	rec, err := ReadRecording(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
