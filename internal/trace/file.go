// Binary trace files persist packed recordings across runs (-trace-dir in
// coresim/mcsim/m3dcli). The format is deliberately simple and versioned:
//
//	offset  size  field
//	0       8     magic "M3DTRC01"
//	8       4     header length H (little-endian uint32)
//	12      H     JSON header {Profile, Seed, Stream, N}
//	12+H    N*8   PC lane      (little-endian uint64)
//	...     N*8   Addr lane
//	...     N*8   Target lane
//	...     N*2   Src1 lane    (little-endian int16, two's complement)
//	...     N*2   Src2 lane
//	...     N*2   Dst lane
//	...     N*1   meta lane    (Kind | Taken<<4 | Complex<<5)
//
// The JSON header carries the full Profile so a loaded recording can
// lazily rebuild its generator and extend past N on demand. Files are
// named by FileName, which folds an FNV-64a hash of the whole identity
// triple into the name, so two profiles sharing a Name never collide; the
// loader additionally re-verifies the identity before trusting a file.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
)

const fileMagic = "M3DTRC01"

// fileHeader is the JSON header of a trace file.
type fileHeader struct {
	Profile Profile
	Seed    int64
	Stream  int
	N       int
}

// FileName returns the canonical cache-directory file name for a stream:
// "<profile>_s<seed>_t<stream>_<fnv64 of the full identity>.m3dtrace".
func FileName(prof Profile, seed int64, stream int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d|%d", prof, seed, stream)
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, prof.Name)
	return fmt.Sprintf("%s_s%d_t%d_%016x.m3dtrace", name, seed, stream, h.Sum64())
}

// Encode serialises the recording's current snapshot.
func (r *Recording) Encode(w io.Writer) error {
	p := r.snap.Load()
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(fileHeader{Profile: r.prof, Seed: r.seed, Stream: r.stream, N: p.n})
	if err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(hdr))); err != nil {
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for _, lane := range []any{p.pc, p.addr, p.target, p.src1, p.src2, p.dst, p.meta} {
		if err := binary.Write(bw, binary.LittleEndian, lane); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRecording deserialises a recording. The result extends on demand
// like any other recording: its generator is rebuilt lazily from the
// header's identity triple on the first read past N.
func ReadRecording(r io.Reader) (*Recording, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: read magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, fileMagic)
	}
	var hlen uint32
	if err := binary.Read(br, binary.LittleEndian, &hlen); err != nil {
		return nil, fmt.Errorf("trace: read header length: %w", err)
	}
	if hlen == 0 || hlen > 1<<20 {
		return nil, fmt.Errorf("trace: implausible header length %d", hlen)
	}
	hdrBytes := make([]byte, hlen)
	if _, err := io.ReadFull(br, hdrBytes); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	var hdr fileHeader
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if hdr.N < 0 || hdr.N > 1<<31 {
		return nil, fmt.Errorf("trace: implausible instruction count %d", hdr.N)
	}
	p := &packed{
		n:      hdr.N,
		pc:     make([]uint64, hdr.N),
		addr:   make([]uint64, hdr.N),
		target: make([]uint64, hdr.N),
		src1:   make([]int16, hdr.N),
		src2:   make([]int16, hdr.N),
		dst:    make([]int16, hdr.N),
		meta:   make([]uint8, hdr.N),
	}
	for _, lane := range []any{p.pc, p.addr, p.target, p.src1, p.src2, p.dst, p.meta} {
		if err := binary.Read(br, binary.LittleEndian, lane); err != nil {
			return nil, fmt.Errorf("trace: read lanes: %w", err)
		}
	}
	rec := &Recording{prof: hdr.Profile, seed: hdr.Seed, stream: hdr.Stream}
	rec.snap.Store(p)
	return rec, nil
}

// SaveFile writes the recording to path atomically (temp file + rename),
// so a concurrent or crashed writer never leaves a torn file for a later
// LoadFile to trust.
func SaveFile(path string, rec *Recording) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".m3dtrace-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := rec.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads a recording from path.
func LoadFile(path string) (*Recording, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := ReadRecording(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
