// Benchmarks live in the external test package so they can pull a real
// workload profile (internal/workload imports trace, so an in-package test
// would be an import cycle).
package trace_test

import (
	"testing"

	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// benchProfile loads a representative SPEC-like profile for the
// generator/replayer throughput comparison.
func benchProfile(b *testing.B) trace.Profile {
	b.Helper()
	p, err := workload.ByName("Mcf")
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkGenerator measures synthesis throughput — the per-cell cost the
// recording cache eliminates. scripts/bench.sh parses ns_per_instr and
// minstr_per_s into BENCH_trace.json.
func BenchmarkGenerator(b *testing.B) {
	p := benchProfile(b)
	const batch = 4096
	buf := make([]trace.Inst, batch)
	g := trace.NewGenerator(p, 42, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NextBatch(buf)
	}
	instrs := float64(b.N) * batch
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(sec*1e9/instrs, "ns_per_instr")
		b.ReportMetric(instrs/sec/1e6, "minstr_per_s")
	}
}

// BenchmarkReplayer measures replay throughput over a pre-materialised
// recording (the steady-state cost every sweep cell pays after the first).
func BenchmarkReplayer(b *testing.B) {
	p := benchProfile(b)
	const batch = 4096
	const length = 1 << 20
	rec := trace.Record(p, 42, 0, length)
	buf := make([]trace.Inst, batch)
	r := trace.NewReplayer(rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r.Pos()+batch > length { // stay inside the recording: measure replay, not extension
			r = trace.NewReplayer(rec)
		}
		r.NextBatch(buf)
	}
	instrs := float64(b.N) * batch
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(sec*1e9/instrs, "ns_per_instr")
		b.ReportMetric(instrs/sec/1e6, "minstr_per_s")
	}
}
