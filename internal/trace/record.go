// Record-once / replay-many trace capture. A Recording materialises the
// deterministic instruction stream of one (Profile, seed, stream) triple
// into a compact packed buffer exactly once; any number of Replayers —
// one per sweep cell, across goroutines — then read the same immutable
// snapshot instead of re-rolling the generator's rand stream per cell.
//
// The packed encoding is struct-of-arrays with fixed-width fields: three
// uint64 lanes (PC, Addr, Target), three int16 lanes (Src1, Src2, Dst) and
// one meta byte packing Kind (low 4 bits), Taken (bit 4) and Complex
// (bit 5) — 31 bytes per instruction versus the 40-byte in-memory Inst
// (and 48 bytes before the field reordering; see layout_test.go).
//
// Recordings extend on demand: the simulator frontend consumes more
// instructions than it commits (squashed wrong-path fetches are discarded,
// and how many depends on the design being swept), so no fixed length is
// ever provably enough. Extension appends from the recording's generator
// under a mutex and publishes a fresh immutable snapshot through an atomic
// pointer; readers never lock, and a reader holding an old snapshot only
// touches indices below its own n, so concurrent extension is race-free.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// meta-byte layout for the packed encoding.
const (
	metaKindMask = 0x0f
	metaTaken    = 1 << 4
	metaComplex  = 1 << 5
)

// packInst encodes an instruction's Kind/Taken/Complex into one meta byte.
func packMeta(in Inst) uint8 {
	m := uint8(in.Kind) & metaKindMask
	if in.Taken {
		m |= metaTaken
	}
	if in.Complex {
		m |= metaComplex
	}
	return m
}

// packed is one immutable snapshot of a recording's struct-of-arrays
// buffer. Every lane has length n; snapshots are only ever replaced, never
// mutated below their own n, so sharing them across goroutines is safe.
type packed struct {
	n                int
	pc, addr, target []uint64
	src1, src2, dst  []int16
	meta             []uint8
}

// inst decodes instruction i back into the in-memory representation. The
// round-trip is exact: every Inst field is stored at full width.
func (p *packed) inst(i int) Inst {
	m := p.meta[i]
	return Inst{
		PC:      p.pc[i],
		Addr:    p.addr[i],
		Target:  p.target[i],
		Src1:    p.src1[i],
		Src2:    p.src2[i],
		Dst:     p.dst[i],
		Kind:    Kind(m & metaKindMask),
		Taken:   m&metaTaken != 0,
		Complex: m&metaComplex != 0,
	}
}

// bytes reports the packed footprint of the snapshot's lanes.
func (p *packed) bytes() int {
	return p.n * (3*8 + 3*2 + 1) // 31 bytes per instruction
}

// Recorder incrementally packs instructions into the struct-of-arrays
// buffer. Record and the binary file loader both build recordings through
// it; tests use it to pack hand-written streams.
type Recorder struct {
	p packed
}

// NewRecorder returns a recorder pre-sized for n instructions.
func NewRecorder(n int) *Recorder {
	if n < 0 {
		n = 0
	}
	return &Recorder{p: packed{
		pc:     make([]uint64, 0, n),
		addr:   make([]uint64, 0, n),
		target: make([]uint64, 0, n),
		src1:   make([]int16, 0, n),
		src2:   make([]int16, 0, n),
		dst:    make([]int16, 0, n),
		meta:   make([]uint8, 0, n),
	}}
}

// Append packs one instruction.
func (r *Recorder) Append(in Inst) {
	r.p.pc = append(r.p.pc, in.PC)
	r.p.addr = append(r.p.addr, in.Addr)
	r.p.target = append(r.p.target, in.Target)
	r.p.src1 = append(r.p.src1, in.Src1)
	r.p.src2 = append(r.p.src2, in.Src2)
	r.p.dst = append(r.p.dst, in.Dst)
	r.p.meta = append(r.p.meta, packMeta(in))
	r.p.n++
}

// RecordFrom packs the next n instructions of the source.
func (r *Recorder) RecordFrom(src Source, n int) {
	var buf [256]Inst
	for n > 0 {
		k := min(n, len(buf))
		src.NextBatch(buf[:k])
		for _, in := range buf[:k] {
			r.Append(in)
		}
		n -= k
	}
}

// Len reports the number of packed instructions.
func (r *Recorder) Len() int { return r.p.n }

// Finish seals the recorder into a Recording for the given identity. The
// identity must be the (profile, seed, stream) triple whose generator
// produced the packed stream: on-demand extension past the recorded length
// rebuilds that generator and fast-forwards it to the recorded position.
func (r *Recorder) Finish(prof Profile, seed int64, stream int) *Recording {
	rec := &Recording{prof: prof, seed: seed, stream: stream}
	p := r.p
	rec.snap.Store(&p)
	r.p = packed{} // the recorder is spent; don't alias the sealed lanes
	return rec
}

// Recording is an immutable-snapshot, on-demand-extending packed stream
// shared read-only by any number of Replayers. It is keyed by the
// (Profile, seed, stream) triple that deterministically generates it.
type Recording struct {
	prof   Profile
	seed   int64
	stream int

	// mu serialises extension; gen is the generator positioned exactly at
	// snap.n instructions (nil until the first extension of a recording
	// loaded from a file, in which case it is rebuilt and fast-forwarded).
	mu  sync.Mutex
	gen *Generator

	snap atomic.Pointer[packed]
}

// Record materialises the first n instructions of the (prof, seed, stream)
// generator into a packed recording. The recording extends itself on
// demand when replayed past n, so n is a sizing hint, not a hard limit.
func Record(prof Profile, seed int64, stream int, n int) *Recording {
	if n < 0 {
		n = 0
	}
	g := NewGenerator(prof, seed, stream)
	rc := NewRecorder(n)
	rc.RecordFrom(g, n)
	rec := rc.Finish(prof, seed, stream)
	rec.gen = g // already positioned at n
	return rec
}

// Profile returns the recorded stream's profile.
func (r *Recording) Profile() Profile { return r.prof }

// Seed returns the recorded stream's generator seed.
func (r *Recording) Seed() int64 { return r.seed }

// Stream returns the recorded stream's id (the generator's threadID).
func (r *Recording) Stream() int { return r.stream }

// Len reports the currently materialised length.
func (r *Recording) Len() int { return r.snap.Load().n }

// Bytes reports the packed memory footprint of the current snapshot
// (31 bytes per materialised instruction, excluding slice headers).
func (r *Recording) Bytes() int { return r.snap.Load().bytes() }

// At returns instruction i, extending the recording if needed.
func (r *Recording) At(i int) Inst {
	var one [1]Inst
	r.read(i, one[:])
	return one[0]
}

// read copies instructions [pos, pos+len(dst)) into dst, extending the
// recording when the window reaches past the current snapshot. The
// lock-free fast path is a snapshot load plus seven lane copies.
func (r *Recording) read(pos int, dst []Inst) {
	if len(dst) == 0 {
		return
	}
	if pos < 0 {
		panic(fmt.Sprintf("trace: negative replay position %d", pos))
	}
	p := r.snap.Load()
	if pos+len(dst) > p.n {
		p = r.extend(pos + len(dst))
	}
	for i := range dst {
		dst[i] = p.inst(pos + i)
	}
}

// extend grows the recording to at least need instructions and returns the
// new snapshot. Growth is geometric (≥1.5x) so a replayer that keeps
// running past the initial hint pays amortised O(1) per instruction.
func (r *Recording) extend(need int) *packed {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.snap.Load()
	if p.n >= need { // lost the race to another extender
		return p
	}
	if r.gen == nil {
		// File-loaded recording: rebuild the generator and fast-forward it
		// to the recorded position. The generator is deterministic, so the
		// skipped prefix equals the recorded one by construction.
		g := NewGenerator(r.prof, r.seed, r.stream)
		var skip [256]Inst
		for done := 0; done < p.n; {
			k := min(p.n-done, len(skip))
			g.NextBatch(skip[:k])
			done += k
		}
		r.gen = g
	}
	target := max(need, p.n+p.n/2, 4096)
	np := &packed{
		n:      target,
		pc:     append(p.pc[:p.n:p.n], make([]uint64, target-p.n)...),
		addr:   append(p.addr[:p.n:p.n], make([]uint64, target-p.n)...),
		target: append(p.target[:p.n:p.n], make([]uint64, target-p.n)...),
		src1:   append(p.src1[:p.n:p.n], make([]int16, target-p.n)...),
		src2:   append(p.src2[:p.n:p.n], make([]int16, target-p.n)...),
		dst:    append(p.dst[:p.n:p.n], make([]int16, target-p.n)...),
		meta:   append(p.meta[:p.n:p.n], make([]uint8, target-p.n)...),
	}
	for i := p.n; i < target; i++ {
		in := r.gen.Next()
		np.pc[i], np.addr[i], np.target[i] = in.PC, in.Addr, in.Target
		np.src1[i], np.src2[i], np.dst[i] = in.Src1, in.Src2, in.Dst
		np.meta[i] = packMeta(in)
	}
	r.snap.Store(np)
	return np
}

// Replayer replays a Recording from the start. It implements Source and is
// bit-identical to a fresh Generator over the recording's identity triple.
// A Replayer is single-goroutine state (one per simulated core), but any
// number of Replayers may share one Recording concurrently.
type Replayer struct {
	rec *Recording
	pos int
}

// NewReplayer returns a replayer positioned at the recording's start.
func NewReplayer(rec *Recording) *Replayer {
	return &Replayer{rec: rec}
}

// Profile returns the recorded stream's profile.
func (r *Replayer) Profile() Profile { return r.rec.prof }

// Recording returns the shared recording the replayer reads.
func (r *Replayer) Recording() *Recording { return r.rec }

// Pos reports the number of instructions replayed so far.
func (r *Replayer) Pos() int { return r.pos }

// Next replays the next instruction.
func (r *Replayer) Next() Inst {
	var one [1]Inst
	r.NextBatch(one[:])
	return one[0]
}

// NextBatch replays the next len(dst) instructions. The recording extends
// itself on demand, so the batch is always complete.
func (r *Replayer) NextBatch(dst []Inst) int {
	r.rec.read(r.pos, dst)
	r.pos += len(dst)
	return len(dst)
}

// View returns read-only windows of the packed lanes needed by functional
// consumers — PC, Addr, Target and the meta byte (Kind/Taken/Complex) —
// for the next max instructions, extending the recording as needed. It
// does not advance the replay position; call Advance after consuming.
// Skipping the Inst decode this way is what makes fast-forward phases
// cheap: the register lanes are never touched and no 40-byte structs are
// materialised.
func (r *Replayer) View(max int) (pc, addr, target []uint64, meta []uint8) {
	if max <= 0 {
		return nil, nil, nil, nil
	}
	p := r.rec.snap.Load()
	if r.pos+max > p.n {
		p = r.rec.extend(r.pos + max)
	}
	end := r.pos + max
	return p.pc[r.pos:end], p.addr[r.pos:end], p.target[r.pos:end], p.meta[r.pos:end]
}

// Advance moves the replay position k instructions forward, past a window
// obtained from View.
func (r *Replayer) Advance(k int) { r.pos += k }

// Seek repositions the replayer at an absolute stream position. Positions
// past the materialised length are valid — the recording extends on the
// next read — which is how a warm-state snapshot restore lands a replayer
// at a checkpoint the recording has not replayed through locally.
func (r *Replayer) Seek(pos int) {
	if pos < 0 {
		panic(fmt.Sprintf("trace: negative replay position %d", pos))
	}
	r.pos = pos
}

// MetaKind extracts the instruction kind from a packed meta byte.
func MetaKind(m uint8) Kind { return Kind(m & metaKindMask) }

// MetaTaken extracts the branch-taken bit from a packed meta byte.
func MetaTaken(m uint8) bool { return m&metaTaken != 0 }
