// The recording cache memoizes Record: a recording is a pure function of
// the (Profile, seed, stream) triple, and the experiment sweeps replay the
// same handful of workload streams once per design point — a Fig6 sweep
// re-generated the bit-identical stream |designs| times per benchmark
// before this cache existed. Modelled on sram.CachedModelWith: all key
// components are comparable value types, so the key is the tuple itself,
// and the registry is a sync.Map safe for the worker-pool fan-out in
// internal/parallel. Recordings are extend-on-demand but never mutated
// below their materialised length, so sharing them read-only across
// goroutines is safe; misses are single-flighted through a per-key
// sync.Once so concurrent cells never record the same stream twice.
package trace

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// recKey identifies one recorded stream. Profile is stored by value: two
// profiles with identical fields are the same stream input even if they
// come from distinct workload lookups.
type recKey struct {
	prof   Profile
	seed   int64
	stream int
}

// recHolder single-flights the recording of one key: racing cells agree on
// one holder via LoadOrStore and only the Once winner records.
type recHolder struct {
	once sync.Once
	rec  *Recording
}

var (
	recCache   sync.Map // recKey -> *recHolder
	recHits    atomic.Uint64
	recMisses  atomic.Uint64
	fileLoads  atomic.Uint64
	loadErrors atomic.Uint64
	saveErrors atomic.Uint64

	cacheDirMu sync.RWMutex
	cacheDir   string
)

// CacheCounters reports the recording cache effectiveness.
type CacheCounters struct {
	// Hits counts SharedRecording calls that found an existing holder
	// (including callers that waited on a concurrent first recording).
	Hits uint64
	// Misses counts first-time recordings (or file loads) per key.
	Misses uint64
	// FileLoads counts misses satisfied from the cache directory instead
	// of generation.
	FileLoads uint64
	// LoadErrors counts cache files that existed but could not be trusted
	// — unreadable, corrupt (checksum or structure), or carrying a foreign
	// identity. Each one fell back to in-memory generation.
	LoadErrors uint64
	// SaveErrors counts failed best-effort writes to the cache directory.
	SaveErrors uint64
}

// CacheStats returns the cumulative counters of the recording cache.
func CacheStats() CacheCounters {
	return CacheCounters{
		Hits:       recHits.Load(),
		Misses:     recMisses.Load(),
		FileLoads:  fileLoads.Load(),
		LoadErrors: loadErrors.Load(),
		SaveErrors: saveErrors.Load(),
	}
}

// ResetCache empties the recording cache and zeroes the counters. Tests
// and long-running sweeps over many (profile, seed) pairs use this to
// bound memory: each cached recording holds ~31 bytes per materialised
// instruction. The cache directory setting is untouched.
func ResetCache() {
	recCache.Range(func(k, _ any) bool {
		recCache.Delete(k)
		return true
	})
	recHits.Store(0)
	recMisses.Store(0)
	fileLoads.Store(0)
	loadErrors.Store(0)
	saveErrors.Store(0)
}

// SetCacheDir points the recording cache at a directory for cross-run
// reuse: misses first try to load "<dir>/<name>.m3dtrace" and freshly
// recorded streams are saved there best-effort (failures are counted in
// CacheCounters.SaveErrors, never fatal). An empty dir disables the file
// layer. The directory is created if missing.
func SetCacheDir(dir string) error {
	if dir != "" {
		if err := getFS().MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("trace: cache dir: %w", err)
		}
	}
	cacheDirMu.Lock()
	cacheDir = dir
	cacheDirMu.Unlock()
	return nil
}

// CacheDir returns the configured cross-run cache directory ("" = none).
func CacheDir() string {
	cacheDirMu.RLock()
	defer cacheDirMu.RUnlock()
	return cacheDir
}

// CachedBytes reports the summed packed footprint of every cached
// recording — the number ResetCache releases.
func CachedBytes() int {
	total := 0
	recCache.Range(func(_, v any) bool {
		h := v.(*recHolder)
		if h.rec != nil {
			total += h.rec.Bytes()
		}
		return true
	})
	return total
}

// SharedRecording returns the process-wide shared recording for the
// (prof, seed, stream) triple, materialising sizeHint instructions on
// first use (the recording extends on demand past the hint). All sweep
// cells replaying the same workload share one read-only recording; the
// first caller records (or loads from the cache directory) while
// concurrent callers for the same key wait on the single flight.
func SharedRecording(prof Profile, seed int64, stream int, sizeHint int) *Recording {
	key := recKey{prof: prof, seed: seed, stream: stream}
	v, loaded := recCache.LoadOrStore(key, &recHolder{})
	h := v.(*recHolder)
	if loaded {
		recHits.Add(1)
	} else {
		recMisses.Add(1)
	}
	h.once.Do(func() {
		if sizeHint <= 0 {
			sizeHint = 4096
		}
		if dir := CacheDir(); dir != "" {
			path := filepath.Join(dir, FileName(prof, seed, stream))
			switch rec, err := LoadFile(path); {
			case err == nil && rec.prof == prof && rec.seed == seed && rec.stream == stream:
				fileLoads.Add(1)
				h.rec = rec
				return
			case err == nil:
				// A file under our identity-hashed name with a foreign
				// identity inside is as untrustworthy as a corrupt one.
				loadErrors.Add(1)
			case !errors.Is(err, fs.ErrNotExist):
				loadErrors.Add(1)
			}
			h.rec = Record(prof, seed, stream, sizeHint)
			if err := SaveFile(path, h.rec); err != nil {
				saveErrors.Add(1)
			}
			return
		}
		h.rec = Record(prof, seed, stream, sizeHint)
	})
	return h.rec
}
