package trace

import (
	"testing"
	"testing/quick"
)

func testProfile() Profile {
	return Profile{
		Name:    "test",
		Mix:     Mix{Load: 0.3, Store: 0.1, Branch: 0.12, FPAdd: 0.1, FPMul: 0.1},
		DepMean: 5, FootprintKB: 1024, HotFrac: 0.7, HotKB: 16,
		StrideFrac: 0.3, CodeKB: 16, BranchBias: 0.9, FlipRate: 0.02,
		ComplexFrac: 0.03,
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(testProfile(), 7, 0)
	b := NewGenerator(testProfile(), 7, 0)
	for i := 0; i < 10_000; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestSeedsAndThreadsDiffer(t *testing.T) {
	a := NewGenerator(testProfile(), 7, 0)
	b := NewGenerator(testProfile(), 8, 0)
	c := NewGenerator(testProfile(), 7, 1)
	same1, same2 := 0, 0
	for i := 0; i < 1000; i++ {
		x, y, z := a.Next(), b.Next(), c.Next()
		if x == y {
			same1++
		}
		if x == z {
			same2++
		}
	}
	if same1 > 100 || same2 > 100 {
		t.Errorf("different seeds/threads should produce different streams (%d, %d matches)", same1, same2)
	}
}

func TestMixApproximatelyRespected(t *testing.T) {
	g := NewGenerator(testProfile(), 1, 0)
	counts := map[Kind]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	check := func(k Kind, want float64) {
		got := float64(counts[k]) / n
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%v fraction %.3f, want ≈%.3f", k, got, want)
		}
	}
	check(Load, 0.3)
	check(Store, 0.1)
	check(Branch, 0.12)
	check(FPAdd, 0.1)
	check(FPMul, 0.1)
}

func TestAddressesWithinFootprint(t *testing.T) {
	p := testProfile()
	g := NewGenerator(p, 3, 2)
	foot := uint64(p.FootprintKB) * 1024
	base := uint64(dataBase) + uint64(2)<<28
	for i := 0; i < 50_000; i++ {
		in := g.Next()
		if in.Kind != Load && in.Kind != Store {
			continue
		}
		if in.Addr >= sharedBase && in.Addr < sharedBase+256*1024 {
			continue // shared region
		}
		if in.Addr < base || in.Addr >= base+foot {
			t.Fatalf("address %#x outside thread-2 footprint [%#x, %#x)", in.Addr, base, base+foot)
		}
	}
}

func TestSharedRegionFraction(t *testing.T) {
	p := testProfile()
	p.SharedFrac = 0.25
	g := NewGenerator(p, 3, 0)
	shared, mem := 0, 0
	for i := 0; i < 100_000; i++ {
		in := g.Next()
		if in.Kind != Load && in.Kind != Store {
			continue
		}
		mem++
		if in.Addr >= sharedBase {
			shared++
		}
	}
	got := float64(shared) / float64(mem)
	if got < 0.18 || got > 0.32 {
		t.Errorf("shared fraction %.3f, want ≈0.25", got)
	}
}

func TestBranchesBehaveLikeTheirBias(t *testing.T) {
	p := testProfile()
	p.BranchBias = 0.95
	p.FlipRate = 0
	g := NewGenerator(p, 11, 0)
	taken, total := 0, 0
	for i := 0; i < 200_000; i++ {
		in := g.Next()
		if in.Kind != Branch {
			continue
		}
		total++
		if in.Taken {
			taken++
		}
	}
	frac := float64(taken) / float64(total)
	// The population mixes taken- and not-taken-biased branches; what must
	// hold is strong polarisation (not ~50/50 noise).
	if frac > 0.9 || frac < 0.1 {
		t.Errorf("taken fraction %.2f implausibly extreme", frac)
	}
	if total == 0 {
		t.Fatal("no branches generated")
	}
}

func TestBranchPCsComeFromStaticSites(t *testing.T) {
	g := NewGenerator(testProfile(), 5, 0)
	pcs := map[uint64]bool{}
	for i := 0; i < 50_000; i++ {
		in := g.Next()
		if in.Kind == Branch {
			pcs[in.PC] = true
		}
	}
	if len(pcs) < 8 || len(pcs) > 256 {
		t.Errorf("static branch population %d outside [8,256]", len(pcs))
	}
}

func TestPropertyPCStaysInCode(t *testing.T) {
	p := testProfile()
	limit := uint64(codeBase) + uint64(p.CodeKB)*1024
	f := func(seed int16) bool {
		g := NewGenerator(p, int64(seed), 0)
		for i := 0; i < 2000; i++ {
			in := g.Next()
			if in.PC < codeBase || in.PC >= limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := ALU; k < numKinds; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d has no name", k)
		}
	}
}
