// Package trace generates deterministic synthetic instruction streams for
// the cycle-level simulator. We cannot ship SPEC CPU2006 / SPLASH-2 /
// PARSEC binaries, so each benchmark is represented by a generator whose
// statistical profile (instruction mix, register dependency distances,
// memory footprints and locality, branch behaviour) is chosen so the
// simulated core exhibits the bottleneck the paper's figures show for that
// application. The *relative* response to frequency, load-to-use latency,
// branch penalty and memory latency — the quantities the M3D designs change
// — is what the profiles preserve.
package trace

import (
	"math/rand"
)

// Kind classifies an instruction.
type Kind uint8

const (
	ALU Kind = iota
	Mul
	Div
	FPAdd
	FPMul
	FPDiv
	Load
	Store
	Branch
	numKinds
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case ALU:
		return "alu"
	case Mul:
		return "mul"
	case Div:
		return "div"
	case FPAdd:
		return "fpadd"
	case FPMul:
		return "fpmul"
	case FPDiv:
		return "fpdiv"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return "?"
	}
}

// Inst is one dynamic instruction. The fields are ordered widest-first
// (three uint64 words, then the three int16 registers, then the three
// single-byte fields) so the struct packs into 40 bytes with a single
// 7-byte tail pad instead of the 48 bytes the declaration order of the
// logical grouping would cost; layout_test.go pins the size. The frontend
// moves these by value through batched NextBatch fills and the packed
// recording stores the same fields in struct-of-arrays form at 31
// bytes/instruction, so the saved padding is paid once per copy.
type Inst struct {
	// PC is the instruction's address.
	PC uint64

	// Addr is the effective address for loads and stores.
	Addr uint64

	// Target is the branch target.
	Target uint64

	// Src1, Src2 and Dst are architectural registers (-1 = unused).
	Src1, Src2, Dst int16

	// Kind classifies the instruction.
	Kind Kind

	// Taken is the branch outcome.
	Taken bool

	// Complex marks instructions needing the complex decoder (Section 4.1.2).
	Complex bool
}

// Source produces a dynamic instruction stream. Implementations are
// infinite: Next always yields an instruction and NextBatch always fills
// dst completely. The two implementations — *Generator (synthesises the
// stream) and *Replayer (replays a packed Recording) — are bit-identical
// for the same (Profile, seed, stream) triple; record_test.go enforces the
// instruction-by-instruction equality and the uarch/experiments oracles
// enforce it end to end.
type Source interface {
	// Profile returns the statistical profile describing the stream.
	Profile() Profile
	// Next produces the next dynamic instruction.
	Next() Inst
	// NextBatch fills dst with the next len(dst) instructions and returns
	// the count filled (always len(dst) for the built-in sources). Batching
	// exists so the simulator frontend amortises the per-instruction
	// interface-call and decode cost over a whole fetch buffer.
	NextBatch(dst []Inst) int
}

// Mix gives the instruction-type probabilities. They need not sum to one;
// the remainder is ALU.
type Mix struct {
	Mul, Div     float64
	FPAdd, FPMul float64
	FPDiv        float64
	Load, Store  float64
	Branch       float64
}

// Profile is the statistical description of one benchmark.
type Profile struct {
	Name string
	Mix  Mix

	// DepMean is the mean register dependency distance (geometric): small
	// values produce long dependency chains (low ILP).
	DepMean float64

	// FootprintKB is the data working set; addresses are drawn within it.
	FootprintKB int

	// HotFrac is the fraction of accesses falling in a small hot region
	// (HotKB), modelling temporal locality.
	HotFrac float64
	HotKB   int

	// StrideFrac is the fraction of data accesses that walk sequentially,
	// modelling spatial locality within cache lines.
	StrideFrac float64

	// CodeKB is the instruction footprint; PCs loop through it.
	CodeKB int

	// BranchBias is the average taken-bias strength of conditional branches
	// (0.5 = random, 1.0 = fully biased and thus perfectly predictable).
	BranchBias float64

	// FlipRate is the per-branch probability that a static branch's bias
	// inverts on a dynamic instance beyond the bias draw, modelling
	// data-dependent branches.
	FlipRate float64

	// ComplexFrac is the fraction of instructions that need the complex
	// decoder.
	ComplexFrac float64

	// SharedFrac (parallel workloads only) is the fraction of data accesses
	// to the globally shared region; SharedWriteFrac of those are writes
	// that trigger coherence invalidations.
	SharedFrac      float64
	SharedWriteFrac float64

	// SerialFrac (parallel workloads only) is the Amdahl serial fraction
	// executed by thread 0 between barriers.
	SerialFrac float64
}

// staticBranch is one static branch site with a stable bias.
type staticBranch struct {
	pc     uint64
	target uint64
	bias   float64
}

// Generator produces the dynamic instruction stream of one thread.
type Generator struct {
	p   Profile
	rng *rand.Rand

	pc        uint64
	codeLimit uint64

	branches []staticBranch

	stridePtr uint64
	base      uint64 // data segment base (distinguishes threads)
	shared    uint64 // shared segment base (same across threads)

	lastDest []int16 // recent destination registers for dependency draws
	destHead int
}

const (
	codeBase   = 0x0040_0000
	dataBase   = 0x1000_0000
	sharedBase = 0x7000_0000
	numRegs    = 64
	destWindow = 64
)

// NewGenerator returns a deterministic generator for the profile. Thread
// IDs separate private data segments while keeping the shared segment
// common, which is what creates coherence traffic in multicore runs.
func NewGenerator(p Profile, seed int64, threadID int) *Generator {
	g := &Generator{
		p:         p,
		rng:       rand.New(rand.NewSource(seed*1_000_003 + int64(threadID)*7919)),
		pc:        codeBase,
		codeLimit: codeBase + uint64(max(p.CodeKB, 1))*1024,
		base:      dataBase + uint64(threadID)<<28,
		shared:    sharedBase,
		lastDest:  make([]int16, destWindow),
	}
	for i := range g.lastDest {
		g.lastDest[i] = int16(i % numRegs)
	}
	// Create a population of static branch sites with unique PCs, so a site
	// has a stable direction bias and a stable target. The instruction-slot
	// count is clamped (CodeKB may be absent or adversarial in fuzzed
	// profiles), and the site count never exceeds the slot count so the
	// unique-PC draw always terminates.
	slots := max(p.CodeKB, 1) * 1024 / 4
	nb := 64 + g.rng.Intn(192)
	if nb > slots {
		nb = slots
	}
	g.branches = make([]staticBranch, nb)
	seen := make(map[uint64]bool, nb)
	for i := range g.branches {
		pc := codeBase + uint64(g.rng.Intn(slots))*4
		for seen[pc] {
			pc = codeBase + uint64(g.rng.Intn(slots))*4
		}
		seen[pc] = true
		tgt := codeBase + uint64(g.rng.Intn(slots))*4
		// Bias draw: most branches are strongly biased; the profile's
		// BranchBias shifts the population.
		b := p.BranchBias + (1-p.BranchBias)*g.rng.Float64()*0.5
		if g.rng.Float64() < 0.3 {
			b = 1 - b // some mostly-not-taken branches
		}
		g.branches[i] = staticBranch{pc: pc, target: tgt, bias: b}
	}
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// srcReg draws a source register with geometric dependency distance. The
// distance is clamped into [1, destWindow]: a non-positive or NaN DepMean
// (possible in adversarial profiles) must not turn into a negative index.
func (g *Generator) srcReg() int16 {
	d := 1 + int(g.rng.ExpFloat64()*g.p.DepMean)
	if d < 1 || d > destWindow {
		d = destWindow
	}
	idx := (g.destHead - d + destWindow) % destWindow
	return g.lastDest[idx]
}

// dataAddr draws a data address according to the locality model.
func (g *Generator) dataAddr(shared bool) uint64 {
	base := g.base
	foot := uint64(max(g.p.FootprintKB, 1)) * 1024
	if shared {
		base = g.shared
		foot = 256 * 1024 // shared region: 256KB
	}
	r := g.rng.Float64()
	switch {
	case !shared && r < g.p.StrideFrac:
		g.stridePtr += 8
		if g.stridePtr >= foot {
			g.stridePtr = 0
		}
		return base + g.stridePtr
	case !shared && r < g.p.StrideFrac+g.p.HotFrac:
		hot := uint64(max(g.p.HotKB, 1)) * 1024
		return base + (g.rng.Uint64()%hot)&^7
	default:
		return base + (g.rng.Uint64()%foot)&^7
	}
}

// Next produces the next dynamic instruction.
func (g *Generator) Next() Inst {
	p := &g.p
	r := g.rng.Float64()
	m := p.Mix
	var kind Kind
	switch {
	case r < m.Load:
		kind = Load
	case r < m.Load+m.Store:
		kind = Store
	case r < m.Load+m.Store+m.Branch:
		kind = Branch
	case r < m.Load+m.Store+m.Branch+m.Mul:
		kind = Mul
	case r < m.Load+m.Store+m.Branch+m.Mul+m.Div:
		kind = Div
	case r < m.Load+m.Store+m.Branch+m.Mul+m.Div+m.FPAdd:
		kind = FPAdd
	case r < m.Load+m.Store+m.Branch+m.Mul+m.Div+m.FPAdd+m.FPMul:
		kind = FPMul
	case r < m.Load+m.Store+m.Branch+m.Mul+m.Div+m.FPAdd+m.FPMul+m.FPDiv:
		kind = FPDiv
	default:
		kind = ALU
	}

	// Operand model: one source usually chains to recent work; the other is
	// often architecturally ready (immediate, loop invariant, base pointer).
	// Loads always chain through their address register, which is what makes
	// pointer-chasing profiles (small DepMean) serialise on memory.
	in := Inst{PC: g.pc, Kind: kind, Src1: -1, Src2: -1, Dst: -1}
	if kind == Load || g.rng.Float64() < 0.8 {
		in.Src1 = g.srcReg()
	}
	if g.rng.Float64() < 0.3 {
		in.Src2 = g.srcReg()
	}

	switch kind {
	case Branch:
		// Snap to the nearest static branch site.
		sb := &g.branches[g.rng.Intn(len(g.branches))]
		in.PC = sb.pc
		in.Target = sb.target
		taken := g.rng.Float64() < sb.bias
		if g.rng.Float64() < p.FlipRate {
			taken = !taken
		}
		in.Taken = taken
		in.Dst = -1
	case Store:
		shared := g.rng.Float64() < p.SharedFrac
		in.Addr = g.dataAddr(shared)
	case Load:
		shared := g.rng.Float64() < p.SharedFrac
		in.Addr = g.dataAddr(shared)
		in.Dst = g.newDest()
	default:
		in.Dst = g.newDest()
	}
	in.Complex = g.rng.Float64() < p.ComplexFrac

	// Advance the PC: sequential, wrapping through the code footprint;
	// taken branches jump.
	if kind == Branch && in.Taken {
		g.pc = in.Target
	} else {
		g.pc += 4
		if g.pc >= g.codeLimit {
			g.pc = codeBase
		}
	}
	return in
}

// NextBatch fills dst with the next len(dst) instructions. The generator
// is an infinite source, so the batch is always complete.
func (g *Generator) NextBatch(dst []Inst) int {
	for i := range dst {
		dst[i] = g.Next()
	}
	return len(dst)
}

// newDest allocates a destination register and records it for dependencies.
func (g *Generator) newDest() int16 {
	d := int16(g.rng.Intn(numRegs))
	g.lastDest[g.destHead] = d
	g.destHead = (g.destHead + 1) % destWindow
	return d
}
