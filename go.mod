module vertical3d

go 1.22
