// Package vertical3d's benchmark harness regenerates every table and figure
// of the paper (run `go test -bench=. -benchmem`). Each benchmark reports
// the headline quantities of its table/figure as custom metrics, so a bench
// run doubles as a reproduction report. Benchmarks with Ablation in the name
// sweep the design choices called out in DESIGN.md.
package vertical3d

import (
	"testing"
	"time"

	"vertical3d/internal/config"
	"vertical3d/internal/core"
	"vertical3d/internal/experiments"
	"vertical3d/internal/multicore"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/uarch"
	"vertical3d/internal/warm"
	"vertical3d/internal/workload"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 3 {
			b.Fatal("bad table 1")
		}
	}
	b.ReportMetric(experiments.Table1()[1].VsAdderPct, "tsv1.3_vs_adder_%")
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2()) != 3 {
			b.Fatal("bad table 2")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	var r experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2()
	}
	b.ReportMetric(r.TSV, "tsv_rel_area_x")
	b.ReportMetric(r.MIV, "miv_rel_area_x")
}

func benchStrategy(b *testing.B, st sram.Strategy) {
	var rows []experiments.PartRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.StrategyTable(st)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Structure == "RF" && r.Via == "M3D" {
			b.ReportMetric(r.Latency, "rf_m3d_latency_red_%")
		}
	}
}

func BenchmarkTable3(b *testing.B) { benchStrategy(b, sram.BitPart) }
func BenchmarkTable4(b *testing.B) { benchStrategy(b, sram.WordPart) }
func BenchmarkTable5(b *testing.B) { benchStrategy(b, sram.PortPart) }

func BenchmarkTable6(b *testing.B) {
	var m3d []core.Choice
	var err error
	for i := 0; i < b.N; i++ {
		m3d, _, err = experiments.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.MinLatencyReduction(m3d, true)*100, "min_latency_red_%")
}

func BenchmarkTable8(b *testing.B) {
	var het []core.Choice
	var err error
	for i := 0; i < b.N; i++ {
		het, err = experiments.Table8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.MinLatencyReduction(het, true)*100, "min_latency_red_%")
}

func BenchmarkLogicStage(b *testing.B) {
	var r experiments.LogicResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.LogicStage()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.FourALU.FreqGain*100, "4alu_freq_gain_%")
	b.ReportMetric(r.OneALU.FreqGain*100, "1alu_freq_gain_%")
}

func BenchmarkTable11(b *testing.B) {
	var s *config.Suite
	var err error
	for i := 0; i < b.N; i++ {
		s, err = experiments.Table11()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.Configs[config.M3DHet].FreqGHz, "m3dhet_GHz")
	b.ReportMetric(s.Configs[config.Base].FreqGHz, "base_GHz")
}

// benchFig6 runs the single-core study once per bench iteration over a
// benchmark subset sized for the harness.
func benchFig6(b *testing.B, names []string) *experiments.Fig6Result {
	b.Helper()
	suite, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	var f *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		list := workload.SPEC2006()
		if names != nil {
			list = list[:0]
			for _, n := range names {
				p, err := workload.ByName(n)
				if err != nil {
					b.Fatal(err)
				}
				list = append(list, p)
			}
		}
		f, err = experiments.Fig6With(suite, list, experiments.QuickRunOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	return f
}

func BenchmarkFig6(b *testing.B) {
	f := benchFig6(b, nil)
	b.ReportMetric(f.AverageSpeedup(config.M3DHet), "m3dhet_speedup")
	b.ReportMetric(f.AverageSpeedup(config.M3DIso), "m3diso_speedup")
	b.ReportMetric(f.AverageSpeedup(config.TSV3D), "tsv3d_speedup")
}

func BenchmarkFig7(b *testing.B) {
	f := benchFig6(b, nil)
	b.ReportMetric(f.AverageNormEnergy(config.M3DHet), "m3dhet_energy")
	b.ReportMetric(f.AverageNormEnergy(config.TSV3D), "tsv3d_energy")
}

func BenchmarkFig8(b *testing.B) {
	f := benchFig6(b, []string{"Gamess", "Mcf", "Gobmk"})
	var rows []experiments.Fig8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig8(f)
		if err != nil {
			b.Fatal(err)
		}
	}
	var dBase, dHet float64
	for _, r := range rows {
		dBase += r.PeakC[config.Base]
		dHet += r.PeakC[config.M3DHet]
	}
	n := float64(len(rows))
	b.ReportMetric(dBase/n, "base_peakC")
	b.ReportMetric(dHet/n-dBase/n, "m3dhet_deltaC")
}

func benchFig9(b *testing.B) *experiments.Fig9Result {
	b.Helper()
	opt := multicore.Options{TotalInstrs: 120_000, WarmupPerCore: 8_000, Phases: 2, Seed: 42}
	var f *experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.Fig9(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	return f
}

func BenchmarkFig9(b *testing.B) {
	f := benchFig9(b)
	b.ReportMetric(f.AverageSpeedup(config.MCHet2X), "het2x_speedup")
	b.ReportMetric(f.AverageSpeedup(config.MCHet), "het_speedup")
}

func BenchmarkFig10(b *testing.B) {
	f := benchFig9(b)
	b.ReportMetric(f.AverageNormEnergy(config.MCHet2X), "het2x_energy")
	b.ReportMetric(f.AveragePowerRatio(config.MCHet2X), "het2x_power_ratio")
}

// --- Worker-pool fan-out (internal/parallel) -------------------------------

// benchParallelSpeedup times fn once sequentially (Workers=1), then runs the
// parallel variant for b.N iterations, and reports the wall-clock speedup as
// a custom metric. Both variants produce bit-identical results (see
// internal/experiments/parallel_test.go); this measures wall-clock only.
func benchParallelSpeedup(b *testing.B, run func(workers int) error) {
	b.Helper()
	start := time.Now()
	if err := run(1); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(0); err != nil { // 0 = GOMAXPROCS workers
			b.Fatal(err)
		}
	}
	par := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_vs_seq_x")
	b.ReportMetric(seq.Seconds()*1e3, "seq_ms")
}

// BenchmarkFig6Parallel measures the worker-pool speedup of the Fig6
// single-core sweep (benchmark × design fan-out) vs the sequential run.
func BenchmarkFig6Parallel(b *testing.B) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	list := workload.SPEC2006()
	benchParallelSpeedup(b, func(workers int) error {
		opt := experiments.QuickRunOptions()
		opt.Workers = workers
		_, err := experiments.Fig6With(suite, list, opt)
		return err
	})
}

// BenchmarkFig9Parallel is the multicore counterpart over Figures 9-10.
func BenchmarkFig9Parallel(b *testing.B) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	list := workload.Parallel()
	benchParallelSpeedup(b, func(workers int) error {
		opt := multicore.Options{TotalInstrs: 80_000, WarmupPerCore: 5_000, Phases: 2, Seed: 42, Workers: workers}
		_, err := experiments.Fig9With(suite, list, opt)
		return err
	})
}

// --- Trace capture & replay (internal/trace) -------------------------------

// BenchmarkFig6TraceCache compares the full Fig6 sweep wall-time with the
// shared record-once/replay-many trace cache against per-cell stream
// regeneration (the pre-cache behaviour, RunOptions.NoTraceCache). The
// shared variant resets the cache every iteration, so each iteration pays
// one cold recording per profile plus replays for all remaining cells —
// the honest cold-sweep cost a CLI run sees. Both variants are
// bit-identical (internal/experiments/tracecache_oracle_test.go);
// scripts/bench.sh parses ms_per_sweep into BENCH_trace.json and the
// acceptance bar is shared < percell.
func BenchmarkFig6TraceCache(b *testing.B) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	list := workload.SPEC2006()
	for _, mode := range []struct {
		name    string
		noCache bool
	}{{"shared", false}, {"percell", true}} {
		b.Run(mode.name, func(b *testing.B) {
			trace.ResetCache()
			defer trace.ResetCache()
			for i := 0; i < b.N; i++ {
				trace.ResetCache()
				opt := experiments.QuickRunOptions()
				opt.NoTraceCache = mode.noCache
				if _, err := experiments.Fig6With(suite, list, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "ms_per_sweep")
		})
	}
}

// --- Warm-state snapshots (internal/warm) ----------------------------------

// BenchmarkFig6WarmCache compares a sampled Fig6 sweep's wall-time with the
// warm-state snapshot cache on vs off. The warm variant resets the snapshot
// cache every iteration, so each iteration pays one ladder build per
// (profile, geometry) identity plus snapshot-served fast-forwards for all
// remaining design cells — the honest cold-sweep cost a CLI run sees. The
// trace cache is primed once outside the timer in both modes so the delta
// isolates the snapshot layer. Both variants are bit-identical
// (internal/experiments/warmcache_oracle_test.go); scripts/bench.sh parses
// ms_per_sweep into BENCH_warm.json and scripts/bench_gate.sh warm gates
// the speedup at >=1.5x.
func BenchmarkFig6WarmCache(b *testing.B) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	var list []trace.Profile
	for _, n := range []string{"Gamess", "Hmmer", "Mcf", "Lbm"} {
		p, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		list = append(list, p)
	}
	// Same 400k:1k:8k geometry the event kernel uses in BENCH_sample.json:
	// at a 2.25% detailed fraction the fast-forward dominates the cell, which
	// is exactly the regime the snapshot cache exists for.
	opt := experiments.RunOptions{
		Warmup: 100_000, Measure: 1_100_000, Seed: 42,
		Sample:       true,
		SampleParams: uarch.SampleParams{Interval: 400_000, Warmup: 1_000, Unit: 8_000},
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"warmoff", false}, {"warmon", true}} {
		b.Run(mode.name, func(b *testing.B) {
			trace.ResetCache()
			warm.ResetCache()
			defer trace.ResetCache()
			defer warm.ResetCache()
			// Prime the trace cache outside the timer: both modes then
			// measure replays, never recording.
			prime := opt
			prime.WarmCache = false
			if _, err := experiments.Fig6With(suite, list, prime); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				warm.ResetCache()
				o := opt
				o.WarmCache = mode.on
				if _, err := experiments.Fig6With(suite, list, o); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "ms_per_sweep")
		})
	}
}

// --- Ablations of the design choices DESIGN.md calls out -------------------

// BenchmarkAblationSplitFraction sweeps the hetero BP/WP bottom-layer share
// for the BPT (the paper recommends ≈2/3 with upsized top cells).
func BenchmarkAblationSplitFraction(b *testing.B) {
	n := tech.N22()
	st, err := core.ByName("BPT")
	if err != nil {
		b.Fatal(err)
	}
	best, bestFrac := -1.0, 0.0
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.5, 0.55, 0.6, 2.0 / 3.0, 0.75} {
			c, err := core.Evaluate(n, st, sram.Hetero(sram.WordPart, tech.MIV(), frac, 1.5))
			if err != nil {
				b.Fatal(err)
			}
			if c.Reduction.Latency > best {
				best, bestFrac = c.Reduction.Latency, frac
			}
		}
	}
	b.ReportMetric(bestFrac, "best_bottom_frac")
	b.ReportMetric(best*100, "best_latency_red_%")
}

// BenchmarkAblationUpsize sweeps the top-layer transistor upsizing factor.
func BenchmarkAblationUpsize(b *testing.B) {
	n := tech.N22()
	st, err := core.ByName("DL1")
	if err != nil {
		b.Fatal(err)
	}
	best, bestUp := -1.0, 0.0
	for i := 0; i < b.N; i++ {
		for _, up := range []float64{1.0, 1.25, 1.5, 2.0, 3.0} {
			c, err := core.Evaluate(n, st, sram.Hetero(sram.BitPart, tech.MIV(), 0.6, up))
			if err != nil {
				b.Fatal(err)
			}
			if c.Reduction.Latency > best {
				best, bestUp = c.Reduction.Latency, up
			}
		}
	}
	b.ReportMetric(bestUp, "best_upsize")
	b.ReportMetric(best*100, "best_latency_red_%")
}

// BenchmarkAblationPortSplit sweeps the RF hetero port split (paper: 10/8).
func BenchmarkAblationPortSplit(b *testing.B) {
	n := tech.N22()
	st, err := core.ByName("RF")
	if err != nil {
		b.Fatal(err)
	}
	bestFoot, bestBottom := -1.0, 0
	for i := 0; i < b.N; i++ {
		for pb := 7; pb <= 12; pb++ {
			frac := float64(pb) / 18.0
			c, err := core.Evaluate(n, st, sram.Hetero(sram.PortPart, tech.MIV(), frac, 2.0))
			if err != nil {
				b.Fatal(err)
			}
			if c.Reduction.Footprint > bestFoot {
				bestFoot, bestBottom = c.Reduction.Footprint, pb
			}
		}
	}
	b.ReportMetric(float64(bestBottom), "best_bottom_ports")
	b.ReportMetric(bestFoot*100, "best_footprint_red_%")
}

// BenchmarkAblationFreqLimiter compares the conservative all-structures
// frequency derivation against the aggressive traditional-limiters one.
func BenchmarkAblationFreqLimiter(b *testing.B) {
	var s *config.Suite
	var err error
	for i := 0; i < b.N; i++ {
		s, err = config.Derive(tech.N22())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.Configs[config.M3DHet].FreqGHz, "conservative_GHz")
	b.ReportMetric(s.Configs[config.M3DHetAgg].FreqGHz, "aggressive_GHz")
}

// BenchmarkAblationSharedL2 measures the effect of pairing cores on shared
// L2s and router stops (Figure 4) at equal core microarchitecture.
func BenchmarkAblationSharedL2(b *testing.B) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	mcs := config.DeriveMulticore(suite)
	shared := mcs[config.MCHet]
	private := shared
	private.SharedL2 = false
	private.RouterHopCycles = mcs[config.MCBase].RouterHopCycles

	prof, err := workload.ByName("Canneal") // sharing-heavy
	if err != nil {
		b.Fatal(err)
	}
	opt := multicore.Options{TotalInstrs: 120_000, WarmupPerCore: 8_000, Phases: 2, Seed: 42}
	var ratio float64
	for i := 0; i < b.N; i++ {
		rs, err := multicore.Run(shared, prof, opt)
		if err != nil {
			b.Fatal(err)
		}
		rp, err := multicore.Run(private, prof, opt)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rp.Seconds / rs.Seconds
	}
	b.ReportMetric(ratio, "sharedL2_speedup")
}
