package vertical3d

import (
	"sync"
	"testing"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
	"vertical3d/internal/resultcache"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

// --- Serving layer (internal/resultcache, cmd/m3dd) ------------------------

// serveBenchProfiles is the benchmark subset the serving benchmarks sweep:
// 4 profiles × the single-core designs = 24 cells per sweep.
var serveBenchProfiles = []string{"Gamess", "Hmmer", "Mcf", "Gobmk"}

func serveBenchList(b *testing.B) []trace.Profile {
	b.Helper()
	var list []trace.Profile
	for _, n := range serveBenchProfiles {
		p, err := workload.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		list = append(list, p)
	}
	return list
}

// BenchmarkCellServe measures the m3dd serving layer's per-cell latency:
//
//	cold      every cell simulates (no result cache) — the baseline;
//	hit       every cell is served from the warm in-memory cache;
//	coalesce  K concurrent identical sweeps on a cold cache; the sims
//	          metric counts actual simulations (single-flight coalescing
//	          makes it one sweep's worth, not K).
//
// The trace cache is primed outside the timers in every mode, so cold
// measures simulation cost rather than stream recording. Served and
// simulated results are bit-identical (see
// internal/experiments/cache_oracle_test.go and cmd/m3dd's oracle test);
// this measures wall-clock only. scripts/bench.sh parses us_per_cell and
// sims into BENCH_serve.json; scripts/bench_gate.sh serve gates the
// cold/hit ratio at >=100x and sims at <= cells x 1.05.
func BenchmarkCellServe(b *testing.B) {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		b.Fatal(err)
	}
	list := serveBenchList(b)
	opt := experiments.QuickRunOptions()
	cells := len(list) * len(config.SingleCoreDesigns())

	trace.ResetCache()
	defer trace.ResetCache()
	// Prime the trace cache: every mode below replays, never records.
	if _, err := experiments.Fig6With(suite, list, opt); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig6With(suite, list, opt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N*cells), "us_per_cell")
	})

	b.Run("hit", func(b *testing.B) {
		cache := resultcache.New(256 << 20)
		o := opt
		o.Cache = cache
		// Warm the cache outside the timer.
		if _, err := experiments.Fig6With(suite, list, o); err != nil {
			b.Fatal(err)
		}
		warm := cache.Stats().Computed
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig6With(suite, list, o); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(b.Elapsed().Seconds()*1e6/float64(b.N*cells), "us_per_cell")
		if cs := cache.Stats(); cs.Computed != warm {
			b.Fatalf("timed section simulated %d cells; hits only expected", cs.Computed-warm)
		}
	})

	b.Run("coalesce", func(b *testing.B) {
		const k = 4
		var sims uint64
		for i := 0; i < b.N; i++ {
			cache := resultcache.New(256 << 20)
			o := opt
			o.Cache = cache
			var wg sync.WaitGroup
			errs := make([]error, k)
			for j := 0; j < k; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					_, errs[j] = experiments.Fig6With(suite, list, o)
				}(j)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			sims += cache.Stats().Computed
		}
		b.ReportMetric(float64(sims)/float64(b.N), "sims")
		b.ReportMetric(float64(cells), "cells")
		b.ReportMetric(float64(k), "sweeps")
	})
}
