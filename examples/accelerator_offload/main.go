// accelerator_offload explores Section 5's "novel architectures" claim:
// M3D's dense vertical MIV links make fine-grained accelerator offload
// profitable at kernel sizes where a conventional 2D side-by-side layout
// still loses to the communication cost.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vertical3d/internal/accel"
	"vertical3d/internal/tech"
)

func main() {
	n := tech.N22()
	const freq = 3.5e9

	layouts := []accel.Integration{accel.SideBySide2D(), accel.VerticalM3D()}

	fmt.Println("Transfer cost for a 256B operand payload:")
	for _, in := range layouts {
		lat, err := in.TransferLatencyCycles(n, 256, freq)
		if err != nil {
			log.Fatal(err)
		}
		e, err := in.TransferEnergy(n, 256)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-17s %4d cycles, %6.1f pJ\n", in.Name, lat, e*1e12)
	}

	fmt.Println("\nOffload profitability (4x faster engine, 128B payload):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kernel size (core cycles)\t2D gain\tM3D gain")
	for _, w := range []int{50, 100, 200, 500, 1000, 5000} {
		o := accel.Offload{CoreCycles: w, AccelFactor: 4, PayloadBytes: 128}
		row := fmt.Sprintf("%d", w)
		for _, in := range layouts {
			ok, gain, err := in.Profitable(n, o, freq)
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if !ok {
				mark = " (loss)"
			}
			row += fmt.Sprintf("\t%+d%s", gain, mark)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()

	for _, in := range layouts {
		be, err := in.BreakEvenCycles(n, 128, 4, freq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("break-even kernel size for %s: %d core cycles\n", in.Name, be)
	}
	fmt.Println("\nM3D's vertical coupling lowers the offload break-even by an order of")
	fmt.Println("magnitude, enabling the fine-grain specialised engines of Section 5.")
}
