// vertical_multicore builds the paper's headline multicore result from the
// public API: under roughly the 4-core 2D power budget, an M3D multicore
// runs twice as many cores (M3D-Het-2X) and finishes parallel work far
// faster while using less energy (Section 7.2.2).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/multicore"
	"vertical3d/internal/tech"
	"vertical3d/internal/trace"
	"vertical3d/internal/workload"
)

func main() {
	suite, err := config.Derive(tech.N22())
	if err != nil {
		log.Fatal(err)
	}
	mcs := config.DeriveMulticore(suite)

	// A custom parallel workload: FFT-like but with heavier sharing.
	prof, err := workload.ByName("Fft")
	if err != nil {
		log.Fatal(err)
	}
	prof.Name = "Fft-heavyshare"
	prof.SharedFrac = 0.3
	prof.SharedWriteFrac = 0.3

	opt := multicore.Options{TotalInstrs: 300_000, WarmupPerCore: 15_000, Phases: 4, Seed: 7}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tcores\tf(GHz)\tVdd\ttime(µs)\tspeedup\tpower(W)\tenergy vs Base")
	var baseSec, baseJ float64
	for _, d := range config.MulticoreDesigns() {
		r, err := multicore.Run(mcs[d], prof, opt)
		if err != nil {
			log.Fatal(err)
		}
		if d == config.MCBase {
			baseSec, baseJ = r.Seconds, r.Energy.TotalJ()
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.1f\t%.2fx\t%.1f\t%.2f\n",
			mcs[d].Name, mcs[d].Cores, mcs[d].PerCore.FreqGHz, mcs[d].PerCore.Vdd,
			r.Seconds*1e6, baseSec/r.Seconds, r.Energy.AvgWatts(), r.Energy.TotalJ()/baseJ)
	}
	tw.Flush()

	// Show the coherence traffic difference between shared-L2 pairing and
	// private L2s.
	rp, err := multicore.Run(mcs[config.MCBase], prof, opt)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := multicore.Run(mcs[config.MCHet], prof, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNoC hops: private-L2 Base %d vs pair-shared M3D %d (Figure 4's shared router stops)\n",
		rp.MemStats.NoCHops, rs.MemStats.NoCHops)
	_ = trace.Profile{}
}
