// thermal_analysis compares the three stacks of Table 10 under an identical
// hotspot-heavy power map: the 2D baseline, the folded monolithic stack, and
// the folded die-stacked (TSV3D) design — reproducing Section 7.1.3's
// conclusion that M3D is thermally efficient while TSV3D is not. The
// design → floorplan/stack mapping and the folded power split come from
// experiments.DesignStack/SolveDesignThermal, the same path Figure 8 takes.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vertical3d/internal/config"
	"vertical3d/internal/experiments"
)

func main() {
	// A Gamess-like power profile: hot IQ/RF/FPU, 6.4W total core power.
	blocks := map[string]float64{
		"FE": 1.1, "RAT": 0.35, "IQ": 0.8, "RF": 0.75,
		"ALU": 0.7, "FPU": 1.3, "LSU": 1.0, "L2": 0.4,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tstack\tfootprint\tpower\tpeak °C\tavg °C")

	solve := func(name string, d config.Design, powerScale float64) {
		scaled := map[string]float64{}
		for k, v := range blocks {
			scaled[k] = v * powerScale
		}
		_, stack, folded, err := experiments.DesignStack(d)
		if err != nil {
			log.Fatal(err)
		}
		r, total, err := experiments.SolveDesignThermal(d, scaled, 0)
		if err != nil {
			log.Fatal(err)
		}
		foot := "full"
		if folded {
			foot = "half"
		}
		fmt.Fprintf(tw, "%s\t%d layers\t%s\t%.1fW\t%.1f\t%.1f\n",
			name, len(stack), foot, total, r.PeakC, r.AvgC)
	}

	solve("Base (2D)", config.Base, 1.0)
	// M3D-Het consumes ~24% less power than Base at half the footprint.
	solve("M3D-Het", config.M3DHet, 0.76)
	// TSV3D saves less power and suffers the thick D2D dielectric.
	solve("TSV3D", config.TSV3D, 0.9)
	tw.Flush()

	fmt.Println("\nThe monolithic stack's µm-scale layer separation keeps the folded core")
	fmt.Println("within a few degrees of 2D; the 20µm die-to-die dielectric of TSV3D traps")
	fmt.Println("the bottom die's heat (Section 7.1.3).")
}
