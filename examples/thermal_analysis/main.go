// thermal_analysis compares the three stacks of Table 10 under an identical
// hotspot-heavy power map: the 2D baseline, the folded monolithic stack, and
// the folded die-stacked (TSV3D) design — reproducing Section 7.1.3's
// conclusion that M3D is thermally efficient while TSV3D is not.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vertical3d/internal/floorplan"
	"vertical3d/internal/thermal"
)

func main() {
	// A Gamess-like power profile: hot IQ/RF/FPU, 6.4W total core power.
	blocks := map[string]float64{
		"FE": 1.1, "RAT": 0.35, "IQ": 0.8, "RF": 0.75,
		"ALU": 0.7, "FPU": 1.3, "LSU": 1.0, "L2": 0.4,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "design\tstack\tfootprint\tpower\tpeak °C\tavg °C")

	solve := func(name string, stack []thermal.LayerSpec, folded bool, powerScale float64) {
		fp := floorplan.Core2D()
		if folded {
			var err error
			fp, err = floorplan.Folded(0.5)
			if err != nil {
				log.Fatal(err)
			}
		}
		p := thermal.DefaultParams(fp.WidthM, fp.HeightM)
		scaled := map[string]float64{}
		for k, v := range blocks {
			scaled[k] = v * powerScale
		}
		var maps [][][]float64
		if folded {
			bot, top := map[string]float64{}, map[string]float64{}
			for k, v := range scaled {
				bot[k], top[k] = v*0.55, v*0.45
			}
			mb, err := fp.PowerMap(bot, p.Nx, p.Ny)
			if err != nil {
				log.Fatal(err)
			}
			mt, err := fp.PowerMap(top, p.Nx, p.Ny)
			if err != nil {
				log.Fatal(err)
			}
			maps = [][][]float64{mb, mt}
		} else {
			m, err := fp.PowerMap(scaled, p.Nx, p.Ny)
			if err != nil {
				log.Fatal(err)
			}
			maps = [][][]float64{m}
		}
		r, err := thermal.Solve(stack, p, maps)
		if err != nil {
			log.Fatal(err)
		}
		var total float64
		for _, m := range maps {
			total += thermal.TotalPower(m)
		}
		foot := "full"
		if folded {
			foot = "half"
		}
		fmt.Fprintf(tw, "%s\t%d layers\t%s\t%.1fW\t%.1f\t%.1f\n",
			name, len(stack), foot, total, r.PeakC, r.AvgC)
	}

	solve("Base (2D)", thermal.Stack2D(), false, 1.0)
	// M3D-Het consumes ~24% less power than Base at half the footprint.
	solve("M3D-Het", thermal.StackM3D(), true, 0.76)
	// TSV3D saves less power and suffers the thick D2D dielectric.
	solve("TSV3D", thermal.StackTSV3D(), true, 0.9)
	tw.Flush()

	fmt.Println("\nThe monolithic stack's µm-scale layer separation keeps the folded core")
	fmt.Println("within a few degrees of 2D; the 20µm die-to-die dielectric of TSV3D traps")
	fmt.Println("the bottom die's heat (Section 7.1.3).")
}
