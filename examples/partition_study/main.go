// partition_study sweeps every partitioning strategy over every core storage
// structure and reports the best design per structure, for iso-layer M3D,
// hetero-layer M3D, and TSV3D — a programmatic tour of Tables 3-6 and 8.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"vertical3d/internal/core"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

func main() {
	node := tech.N22()

	fmt.Println("Per-strategy sweep for the register file (all vias):")
	rf, err := core.ByName("RF")
	if err != nil {
		log.Fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tvia\tlatency%\tenergy%\tfootprint%")
	for _, st := range []sram.Strategy{sram.BitPart, sram.WordPart, sram.PortPart} {
		for _, v := range []tech.Via{tech.MIV(), tech.TSVAggressive()} {
			c, err := core.Evaluate(node, rf, sram.Iso(st, v))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%v\t%s\t%.0f\t%.0f\t%.0f\n", st, v.Name,
				c.Reduction.Latency*100, c.Reduction.Energy*100, c.Reduction.Footprint*100)
		}
	}
	tw.Flush()

	fmt.Println("\nBest partition per structure (iso vs hetero M3D):")
	iso, err := core.SelectAll(node, core.IsoLayer, tech.MIV())
	if err != nil {
		log.Fatal(err)
	}
	het, err := core.SelectAll(node, core.HeteroLayer, tech.MIV())
	if err != nil {
		log.Fatal(err)
	}
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "struct\tiso best\tiso lat%\thet best\thet lat%\thet foot%")
	for i := range iso {
		fmt.Fprintf(tw, "%s\t%v\t%.0f\t%v\t%.0f\t%.0f\n",
			iso[i].Structure.Spec.Name, iso[i].Strategy(), iso[i].Reduction.Latency*100,
			het[i].Strategy(), het[i].Reduction.Latency*100, het[i].Reduction.Footprint*100)
	}
	tw.Flush()

	fmt.Printf("\nfrequency-limiting reduction: iso %.1f%%, hetero %.1f%% — hetero recovers nearly all of iso\n",
		core.FrequencyLimitingReduction(iso, 0.6)*100,
		core.FrequencyLimitingReduction(het, 0.6)*100)
}
