// Quickstart: partition a single storage structure — the 18-port register
// file — into two M3D layers and print what the vertical design buys,
// exactly the paper's headline mechanism (Tables 5, 6 and 8).
package main

import (
	"fmt"
	"log"

	"vertical3d/internal/core"
	"vertical3d/internal/sram"
	"vertical3d/internal/tech"
)

func main() {
	node := tech.N22()

	// The register file of Table 9: 160 words × 64 bits, 12R + 6W ports.
	rf, err := core.ByName("RF")
	if err != nil {
		log.Fatal(err)
	}

	// 2D baseline.
	base, err := sram.Model(node, rf.Spec, sram.Flat())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2D register file:   access %.0fps, read energy %.2fpJ, footprint %.0fµm²\n",
		base.AccessTime*1e12, base.ReadEnergy*1e12, base.FootprintArea*1e12)

	// Iso-layer M3D port partitioning (Section 3.2.3): half the ports per
	// layer, two MIVs per cell.
	iso, err := core.Evaluate(node, rf, sram.Iso(sram.PortPart, tech.MIV()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M3D iso-layer PP:   access %.0fps (-%.0f%%), energy -%.0f%%, footprint -%.0f%%\n",
		iso.Result.AccessTime*1e12, iso.Reduction.Latency*100,
		iso.Reduction.Energy*100, iso.Reduction.Footprint*100)

	// Hetero-layer M3D (Section 4.2.1): the top layer is 17% slower, so put
	// 10 of 18 ports below and upsize the top layer's access transistors.
	het, err := core.SelectBest(node, rf, core.HeteroLayer, tech.MIV())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M3D hetero-layer:   access %.0fps (-%.0f%%), energy -%.0f%%, footprint -%.0f%% [%v, bottom %.0f%% of ports, top upsized %.1fx]\n",
		het.Result.AccessTime*1e12, het.Reduction.Latency*100,
		het.Reduction.Energy*100, het.Reduction.Footprint*100,
		het.Strategy(), het.Result.Partition.BottomFrac*100, het.Result.Partition.TopUpsize)

	// The same partition with TSVs is catastrophic (Table 5).
	tsv, err := core.Evaluate(node, rf, sram.Iso(sram.PortPart, tech.TSVAggressive()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TSV3D PP (broken):  access %+.0f%%, footprint %+.0f%% — TSVs are too big for port partitioning\n",
		-tsv.Reduction.Latency*100, -tsv.Reduction.Footprint*100)
}
