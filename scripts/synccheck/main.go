// Command synccheck is the durability lint behind the journal and trace
// packages' crash-safety contracts: it fails on any bare statement call to
// .Sync() or .Close() — a discarded error from exactly the two operations
// whose failure means "your acknowledged data is not on disk".
//
//	go run ./scripts/synccheck internal/journal internal/trace
//
// The rule is syntactic and strict on purpose:
//
//   - `f.Sync()` or `f.Close()` as a statement: flagged — the error
//     vanishes silently;
//   - `if err := f.Sync(); ...`, `return f.Close()`: fine — the error is
//     consumed;
//   - `_ = f.Close()`: fine — the discard is explicit and greppable;
//   - `defer f.Close()`: fine — the idiomatic read-side cleanup, where the
//     write path has already synced what matters.
//
// Test files are exempt: the contract guards production durability, and
// tests assert their outcomes explicitly.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: synccheck <dir> [dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "synccheck:", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "synccheck: %d unchecked Sync/Close call(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir walks dir recursively and reports every violation found.
func checkDir(dir string) (int, error) {
	bad := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") ||
			strings.HasSuffix(path, "_test.go") {
			return err
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Sync" && sel.Sel.Name != "Close") {
				return true
			}
			pos := fset.Position(call.Pos())
			fmt.Fprintf(os.Stderr, "%s: unchecked .%s() error (use `_ =` to discard explicitly)\n",
				pos, sel.Sel.Name)
			bad++
			return true
		})
		return nil
	})
	return bad, err
}
