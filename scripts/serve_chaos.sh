#!/bin/sh
# serve_chaos.sh — serving-layer kill -9 restart-resume proof for m3dd:
# builds the daemon, runs the reference sweep, SIGKILLs a second daemon
# mid-sweep, restarts it over the same -journal-dir/-job-dir and requires
# the resumed /cells document to be byte-identical to the reference with
# zero cell re-execution. The campaign logic lives in scripts/servechaos
# (plain Go, stdlib only); this wrapper exists so CI and operators invoke
# it the same way as the other chaos proofs.
#
# Usage: scripts/serve_chaos.sh
# Run from the repository root. Requires only the Go toolchain.
set -eu

exec go run ./scripts/servechaos
