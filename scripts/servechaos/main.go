// Command servechaos is the serving-layer half of the chaos suite: the
// kill -9 restart-resume proof for m3dd at the process level (the
// in-process variants live in cmd/m3dd/restart_test.go and chaos_test.go).
//
//	go run ./scripts/servechaos
//
// The campaign:
//
//  1. build cmd/m3dd and run a reference daemon over its own journal and
//     job directories; POST the quick Fig6 sweep, wait for it, and keep
//     the /cells document as the oracle;
//  2. start a fresh daemon over fresh directories, POST the same sweep,
//     wait for the first simulated cell, then SIGKILL the process — no
//     drain, no journal flush beyond what each completed cell already
//     synced;
//  3. restart the daemon over the SAME directories: the write-ahead job
//     manifest must resurface the job under its original ID and run it to
//     completion, with the pre-kill cells served from the journal;
//  4. require the resumed /cells document to be byte-identical to the
//     reference, the job marked restored, the disk tier to have served
//     hits, and the combined simulated-cell count to not exceed one
//     sweep's worth — zero cell re-execution.
//
// If the sweep finishes before the kill lands the proof degenerates to a
// plain replay (still byte-compared); the script says so and still passes,
// mirroring resume_chaos.sh.
//
// Exit codes: 0 proof held, 1 violation, 2 environment/build failure.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

const sweepBody = `{"experiment":"fig6","benchmarks":["Mcf","Milc"],"workers":1}`

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "servechaos: FAIL — %v\n", err)
		os.Exit(1)
	}
	fmt.Println("servechaos: PASS — resumed daemon serves byte-identical results with zero cell re-execution")
}

func run() error {
	work, err := os.MkdirTemp("", "servechaos")
	if err != nil {
		fatalEnv(err)
	}
	defer os.RemoveAll(work)

	bin := filepath.Join(work, "m3dd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/m3dd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fatalEnv(fmt.Errorf("go build ./cmd/m3dd: %w", err))
	}

	// Phase 1: uninterrupted reference.
	fmt.Println("servechaos: phase 1 — reference run")
	refDaemon, err := startDaemon(bin, filepath.Join(work, "ref-journal"), filepath.Join(work, "ref-jobs"))
	if err != nil {
		return err
	}
	defer refDaemon.kill()
	refID, err := postSweep(refDaemon.base)
	if err != nil {
		return err
	}
	if _, err := waitState(refDaemon.base, refID, "done", 5*time.Minute); err != nil {
		return err
	}
	refCells, err := getBody(refDaemon.base + "/sweeps/" + refID + "/cells")
	if err != nil {
		return err
	}
	refDaemon.kill()

	// Phase 2: kill -9 mid-sweep.
	fmt.Println("servechaos: phase 2 — kill -9 mid-sweep")
	jdir, jobsDir := filepath.Join(work, "journal"), filepath.Join(work, "jobs")
	victim, err := startDaemon(bin, jdir, jobsDir)
	if err != nil {
		return err
	}
	defer victim.kill()
	id, err := postSweep(victim.base)
	if err != nil {
		return err
	}

	// Wait until at least one cell result has been computed — which is the
	// moment it is journaled, not merely dispatched — so the kill provably
	// lands with completed work on disk, then pull the trigger without any
	// grace.
	var preKill jobDoc
	var preKillComputed uint64
	degenerate := false
	deadline := time.Now().Add(5 * time.Minute)
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("sweep %s made no progress before the kill window closed", id)
		}
		doc, err := getJob(victim.base, id)
		if err != nil {
			return err
		}
		if doc.State == "done" {
			degenerate = true
			preKill = doc
			fmt.Println("servechaos: note: sweep finished before the kill landed; degenerating to a replay proof")
			break
		}
		if doc.State == "failed" {
			return fmt.Errorf("sweep failed before the kill: %s", doc.Error)
		}
		computed, err := cacheComputed(victim.base)
		if err != nil {
			return err
		}
		if computed >= 1 {
			preKill = doc
			preKillComputed = computed
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.kill() // SIGKILL: no drain, no manifest courtesy write

	// Phase 3: restart over the same directories.
	fmt.Println("servechaos: phase 3 — restart and resume")
	heir, err := startDaemon(bin, jdir, jobsDir)
	if err != nil {
		return err
	}
	defer heir.kill()
	resumed, err := waitState(heir.base, id, "done", 5*time.Minute)
	if err != nil {
		return fmt.Errorf("resumed job: %w", err)
	}
	if !resumed.Restored && !degenerate {
		return fmt.Errorf("job %s not marked restored after the restart", id)
	}

	// Phase 4: the oracle.
	fmt.Println("servechaos: phase 4 — byte-compare against the reference")
	gotCells, err := getBody(heir.base + "/sweeps/" + id + "/cells")
	if err != nil {
		return err
	}
	if !bytes.Equal(refCells, gotCells) {
		return fmt.Errorf("resumed /cells differs from the uninterrupted reference (%d vs %d bytes)", len(gotCells), len(refCells))
	}

	fmt.Printf("servechaos: pre-kill %d cell(s) journaled (%d dispatched), resumed %d cell(s)\n",
		preKillComputed, preKill.Simulated, resumed.Simulated)
	if !degenerate {
		var stz struct {
			Cache struct {
				DiskHits uint64 `json:"disk_hits"`
			} `json:"cache"`
			Admission struct {
				Restored uint64 `json:"restored"`
			} `json:"admission"`
		}
		raw, err := getBody(heir.base + "/statsz")
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &stz); err != nil {
			return fmt.Errorf("statsz: %w", err)
		}
		if stz.Admission.Restored < 1 {
			return fmt.Errorf("statsz reports %d restored job(s), want >= 1", stz.Admission.Restored)
		}
		if stz.Cache.DiskHits == 0 {
			return fmt.Errorf("resume served no disk hits despite %d pre-kill journaled cell(s)", preKillComputed)
		}
		// Zero re-execution of COMPLETED work: every cell journaled before
		// the kill must be served, not re-simulated. (Cells in flight when
		// SIGKILL landed are legitimately re-run.)
		const sweepCells = 12 // fig6: 6 designs x 2 benchmarks
		if resumed.Simulated > sweepCells-preKillComputed {
			return fmt.Errorf("cell re-execution: resumed run simulated %d cells, journal held %d of %d",
				resumed.Simulated, preKillComputed, sweepCells)
		}
	}
	return nil
}

// cacheComputed reads the daemon's computed-cell counter: cells whose
// results have been stored (and, with -journal-dir, journaled).
func cacheComputed(base string) (uint64, error) {
	raw, err := getBody(base + "/statsz")
	if err != nil {
		return 0, err
	}
	var stz struct {
		Cache struct {
			Computed uint64 `json:"computed"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(raw, &stz); err != nil {
		return 0, fmt.Errorf("statsz: %w", err)
	}
	return stz.Cache.Computed, nil
}

// daemon is one spawned m3dd process and its scraped base URL.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon spawns m3dd on an ephemeral port and scrapes the bound
// address from its "listening on" log line.
func startDaemon(bin, journalDir, jobDir string) (*daemon, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-quick",
		"-journal-dir", journalDir,
		"-job-dir", jobDir,
		"-j", "1",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		fatalEnv(fmt.Errorf("start m3dd: %w", err))
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, base: "http://" + addr}, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("m3dd never logged its listen address")
	}
}

// kill SIGKILLs the daemon and reaps it. Idempotent.
func (d *daemon) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
	}
	_, _ = d.cmd.Process.Wait()
}

// jobDoc is the subset of GET /sweeps/{id} the campaign reads.
type jobDoc struct {
	State     string `json:"state"`
	Error     string `json:"error"`
	Restored  bool   `json:"restored"`
	Simulated uint64 `json:"simulated_cells"`
}

func postSweep(base string) (string, error) {
	resp, err := http.Post(base+"/sweeps", "application/json", strings.NewReader(sweepBody))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("POST /sweeps: %d %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.ID, nil
}

func getJob(base, id string) (jobDoc, error) {
	var doc jobDoc
	raw, err := getBody(base + "/sweeps/" + id)
	if err != nil {
		return doc, err
	}
	return doc, json.Unmarshal(raw, &doc)
}

// waitState polls a job until it reaches want, failing on "failed".
func waitState(base, id, want string, timeout time.Duration) (jobDoc, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		doc, err := getJob(base, id)
		if err != nil {
			return doc, err
		}
		if doc.State == want {
			return doc, nil
		}
		if doc.State == "failed" {
			return doc, fmt.Errorf("job %s failed: %s", id, doc.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return jobDoc{}, fmt.Errorf("job %s did not reach %q within %v", id, want, timeout)
}

func getBody(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return io.ReadAll(resp.Body)
}

// fatalEnv reports an environment (not proof) failure and exits 2.
func fatalEnv(err error) {
	fmt.Fprintf(os.Stderr, "servechaos: environment: %v\n", err)
	os.Exit(2)
}
