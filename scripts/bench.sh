#!/bin/sh
# bench.sh — run the simulation-kernel throughput benchmarks and write
# BENCH_core.json with one record per (kernel, profile) cell:
#   [{"kernel":"event","profile":"Mcf","mips":1.07,"ns_per_instr":937.6}, ...]
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=5x scripts/bench.sh       # more iterations per cell
#
# Run from the repository root. Requires only the Go toolchain and awk.
set -eu

out="${1:-BENCH_core.json}"
benchtime="${BENCHTIME:-2x}"

raw="$(go test -run '^$' -bench 'BenchmarkCoreRun' -benchtime "$benchtime" ./internal/uarch)"

printf '%s\n' "$raw" | awk -v out="$out" '
	/^BenchmarkCoreRun\// {
		# BenchmarkCoreRun/<kernel>/<profile>-N  iters  T ns/op  M mips  P ns_per_instr
		split($1, parts, "/")
		kernel = parts[2]
		profile = parts[3]
		sub(/-[0-9]+$/, "", profile)
		mips = ""; nspi = ""
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "mips") mips = $i
			if ($(i+1) == "ns_per_instr") nspi = $i
		}
		if (mips == "" || nspi == "") next
		rec[++n] = sprintf("  {\"kernel\": \"%s\", \"profile\": \"%s\", \"mips\": %s, \"ns_per_instr\": %s}", kernel, profile, mips, nspi)
	}
	END {
		if (n == 0) { print "bench.sh: no BenchmarkCoreRun lines parsed" > "/dev/stderr"; exit 1 }
		print "[" > out
		for (i = 1; i <= n; i++) print rec[i] (i < n ? "," : "") >> out
		print "]" >> out
	}
'

printf '%s\n' "$raw"
echo "bench.sh: wrote $out"
