#!/bin/sh
# bench.sh — run the simulation-kernel throughput benchmarks and write
# BENCH_core.json with one record per (kernel, profile) cell:
#   [{"kernel":"event","profile":"Mcf","mips":1.07,"ns_per_instr":937.6}, ...]
# plus BENCH_trace.json with the record-once/replay-many comparison:
#   {"generator":{"ns_per_instr":...,"minstr_per_s":...},
#    "replayer":{...},
#    "fig6_sweep":{"shared_ms":...,"percell_ms":...,"speedup_x":...}}
#
# Usage: scripts/bench.sh [core_output.json] [trace_output.json]
#   BENCHTIME=5x scripts/bench.sh             # more sweep iterations per cell
#   TRACE_BENCHTIME=5000x scripts/bench.sh    # more generator/replayer batches
#
# Run from the repository root. Requires only the Go toolchain and awk.
set -eu

out="${1:-BENCH_core.json}"
traceout="${2:-BENCH_trace.json}"
benchtime="${BENCHTIME:-2x}"
tracetime="${TRACE_BENCHTIME:-1000x}"

raw="$(go test -run '^$' -bench 'BenchmarkCoreRun' -benchtime "$benchtime" ./internal/uarch)"

printf '%s\n' "$raw" | awk -v out="$out" '
	/^BenchmarkCoreRun\// {
		# BenchmarkCoreRun/<kernel>/<profile>-N  iters  T ns/op  M mips  P ns_per_instr
		split($1, parts, "/")
		kernel = parts[2]
		profile = parts[3]
		sub(/-[0-9]+$/, "", profile)
		mips = ""; nspi = ""
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "mips") mips = $i
			if ($(i+1) == "ns_per_instr") nspi = $i
		}
		if (mips == "" || nspi == "") next
		rec[++n] = sprintf("  {\"kernel\": \"%s\", \"profile\": \"%s\", \"mips\": %s, \"ns_per_instr\": %s}", kernel, profile, mips, nspi)
	}
	END {
		if (n == 0) { print "bench.sh: no BenchmarkCoreRun lines parsed" > "/dev/stderr"; exit 1 }
		print "[" > out
		for (i = 1; i <= n; i++) print rec[i] (i < n ? "," : "") >> out
		print "]" >> out
	}
'

printf '%s\n' "$raw"
echo "bench.sh: wrote $out"

# --- Trace capture & replay: synthesis vs replay throughput, and the Fig6
# sweep wall-time with the shared recording cache on vs off.
traw="$(go test -run '^$' -bench 'BenchmarkGenerator$|BenchmarkReplayer$' -benchtime "$tracetime" ./internal/trace)"
sraw="$(go test -run '^$' -bench 'BenchmarkFig6TraceCache' -benchtime "$benchtime" .)"

printf '%s\n%s\n' "$traw" "$sraw" | awk -v out="$traceout" '
	function metric(unit,    i) {
		for (i = 2; i < NF; i++) if ($(i+1) == unit) return $i
		return ""
	}
	$1 ~ /^BenchmarkGenerator(-[0-9]+)?$/ { g_nspi = metric("ns_per_instr"); g_mips = metric("minstr_per_s") }
	$1 ~ /^BenchmarkReplayer(-[0-9]+)?$/  { r_nspi = metric("ns_per_instr"); r_mips = metric("minstr_per_s") }
	$1 ~ /^BenchmarkFig6TraceCache\/shared(-[0-9]+)?$/  { shared = metric("ms_per_sweep") }
	$1 ~ /^BenchmarkFig6TraceCache\/percell(-[0-9]+)?$/ { percell = metric("ms_per_sweep") }
	END {
		if (g_nspi == "" || r_nspi == "" || shared == "" || percell == "") {
			print "bench.sh: trace benchmark lines missing" > "/dev/stderr"; exit 1
		}
		printf "{\n" > out
		printf "  \"generator\": {\"ns_per_instr\": %s, \"minstr_per_s\": %s},\n", g_nspi, g_mips >> out
		printf "  \"replayer\": {\"ns_per_instr\": %s, \"minstr_per_s\": %s},\n", r_nspi, r_mips >> out
		printf "  \"fig6_sweep\": {\"shared_ms\": %s, \"percell_ms\": %s, \"speedup_x\": %.3f}\n", shared, percell, percell / shared >> out
		printf "}\n" >> out
	}
'

printf '%s\n%s\n' "$traw" "$sraw"
echo "bench.sh: wrote $traceout"
