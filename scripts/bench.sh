#!/bin/sh
# bench.sh — run the simulation-kernel throughput benchmarks and write the
# BENCH_*.json snapshots the repository commits as its performance baseline:
#
#   BENCH_core.json    one record per (kernel, profile) detailed-run cell:
#                      [{"kernel":"event","profile":"Mcf","mips":1.07,...}]
#   BENCH_trace.json   record-once/replay-many trace capture comparison
#   BENCH_sample.json  sampled-vs-full per-cell speedup and CPI error per
#                      profile, plus geomean/min/max summary
#   BENCH_warm.json    sampled Fig6 sweep wall-time with the warm-state
#                      snapshot cache on vs off
#   BENCH_serve.json   m3dd serving layer: per-cell latency cold (simulate)
#                      vs hit (warm result cache), and the single-flight
#                      coalescing proof (K identical sweeps, one sweep's
#                      worth of simulations)
#
# Every section is emitted atomically: the JSON is written to a temp file
# next to the destination and renamed into place only after the section's
# benchmarks ran and parsed. A partial run — interrupted, or scoped with
# SECTIONS — can therefore never truncate a previously committed snapshot.
#
# Usage: scripts/bench.sh [core_output.json] [trace_output.json] [sample_output.json] [warm_output.json] [serve_output.json]
#   SECTIONS="core trace sample warm serve"  # which sections to run (default: all)
#   BENCHTIME=5x scripts/bench.sh             # more sweep iterations per cell
#   TRACE_BENCHTIME=5000x scripts/bench.sh    # more generator/replayer batches
#   SAMPLE_BENCH_N=1000000 SECTIONS=sample scripts/bench.sh  # quick smoke
#
# Run from the repository root. Requires only the Go toolchain and awk.
set -eu

out="${1:-BENCH_core.json}"
traceout="${2:-BENCH_trace.json}"
sampleout="${3:-BENCH_sample.json}"
warmout="${4:-BENCH_warm.json}"
serveout="${5:-BENCH_serve.json}"
benchtime="${BENCHTIME:-2x}"
tracetime="${TRACE_BENCHTIME:-1000x}"
sections="${SECTIONS:-core trace sample warm serve}"

has_section() {
	case " $sections " in
	*" $1 "*) return 0 ;;
	*) return 1 ;;
	esac
}

# --- Core kernel throughput ------------------------------------------------
if has_section core; then
	raw="$(go test -run '^$' -bench 'BenchmarkCoreRun' -benchtime "$benchtime" ./internal/uarch)"
	tmp="$out.tmp"
	printf '%s\n' "$raw" | awk -v out="$tmp" '
		/^BenchmarkCoreRun\// {
			# BenchmarkCoreRun/<kernel>/<profile>-N  iters  T ns/op  M mips  P ns_per_instr
			split($1, parts, "/")
			kernel = parts[2]
			profile = parts[3]
			sub(/-[0-9]+$/, "", profile)
			mips = ""; nspi = ""
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "mips") mips = $i
				if ($(i+1) == "ns_per_instr") nspi = $i
			}
			if (mips == "" || nspi == "") next
			rec[++n] = sprintf("  {\"kernel\": \"%s\", \"profile\": \"%s\", \"mips\": %s, \"ns_per_instr\": %s}", kernel, profile, mips, nspi)
		}
		END {
			if (n == 0) { print "bench.sh: no BenchmarkCoreRun lines parsed" > "/dev/stderr"; exit 1 }
			print "[" > out
			for (i = 1; i <= n; i++) print rec[i] (i < n ? "," : "") >> out
			print "]" >> out
		}
	'
	mv "$tmp" "$out"
	printf '%s\n' "$raw"
	echo "bench.sh: wrote $out"
fi

# --- Trace capture & replay ------------------------------------------------
# Synthesis vs replay throughput, and the Fig6 sweep wall-time with the
# shared recording cache on vs off.
if has_section trace; then
	traw="$(go test -run '^$' -bench 'BenchmarkGenerator$|BenchmarkReplayer$' -benchtime "$tracetime" ./internal/trace)"
	sraw="$(go test -run '^$' -bench 'BenchmarkFig6TraceCache' -benchtime "$benchtime" .)"
	tmp="$traceout.tmp"
	printf '%s\n%s\n' "$traw" "$sraw" | awk -v out="$tmp" '
		function metric(unit,    i) {
			for (i = 2; i < NF; i++) if ($(i+1) == unit) return $i
			return ""
		}
		$1 ~ /^BenchmarkGenerator(-[0-9]+)?$/ { g_nspi = metric("ns_per_instr"); g_mips = metric("minstr_per_s") }
		$1 ~ /^BenchmarkReplayer(-[0-9]+)?$/  { r_nspi = metric("ns_per_instr"); r_mips = metric("minstr_per_s") }
		$1 ~ /^BenchmarkFig6TraceCache\/shared(-[0-9]+)?$/  { shared = metric("ms_per_sweep") }
		$1 ~ /^BenchmarkFig6TraceCache\/percell(-[0-9]+)?$/ { percell = metric("ms_per_sweep") }
		END {
			if (g_nspi == "" || r_nspi == "" || shared == "" || percell == "") {
				print "bench.sh: trace benchmark lines missing" > "/dev/stderr"; exit 1
			}
			printf "{\n" > out
			printf "  \"generator\": {\"ns_per_instr\": %s, \"minstr_per_s\": %s},\n", g_nspi, g_mips >> out
			printf "  \"replayer\": {\"ns_per_instr\": %s, \"minstr_per_s\": %s},\n", r_nspi, r_mips >> out
			printf "  \"fig6_sweep\": {\"shared_ms\": %s, \"percell_ms\": %s, \"speedup_x\": %.3f}\n", shared, percell, percell / shared >> out
			printf "}\n" >> out
		}
	'
	mv "$tmp" "$traceout"
	printf '%s\n%s\n' "$traw" "$sraw"
	echo "bench.sh: wrote $traceout"
fi

# --- Sampled simulation ----------------------------------------------------
# One full detailed cell vs the same cell under interval sampling, per
# kernel and profile (internal/uarch/sample_bench_test.go). The sampling
# geometries are fixed in the benchmark; SAMPLE_BENCH_N shrinks the cells
# for smoke runs (the CPI error is meaningless at smoke lengths and is not
# gated there).
if has_section sample; then
	mraw="$(go test -run '^$' -bench 'BenchmarkSampledCell' -benchtime "${SAMPLE_BENCHTIME:-1x}" -timeout 60m ./internal/uarch)"
	tmp="$sampleout.tmp"
	printf '%s\n' "$mraw" | awk -v out="$tmp" -v n="${SAMPLE_BENCH_N:-32000000}" '
		function metric(unit,    i) {
			for (i = 2; i < NF; i++) if ($(i+1) == unit) return $i
			return ""
		}
		/^BenchmarkSampledCell\// {
			split($1, parts, "/")
			kernel = parts[2]
			profile = parts[3]
			sub(/-[0-9]+$/, "", profile)
			sp = metric("speedup_x"); er = metric("cpi_err_pct")
			fm = metric("full_ms"); sm = metric("sampled_ms"); em = metric("eff_mips")
			if (sp == "" || er == "") next
			cells[++k] = sprintf("    {\"kernel\": \"%s\", \"profile\": \"%s\", \"speedup_x\": %s, \"cpi_err_pct\": %s, \"full_ms\": %s, \"sampled_ms\": %s, \"eff_mips\": %s}", kernel, profile, sp, er, fm, sm, em)
			fullms[kernel "/" profile] = fm + 0
			sampms[kernel "/" profile] = sm + 0
			if (kernel == "reference") refp[++nrp] = profile
			cnt[kernel]++
			logsum[kernel] += log(sp)
			if (cnt[kernel] == 1 || sp + 0 < minsp[kernel] + 0) minsp[kernel] = sp
			if (cnt[kernel] == 1 || sp + 0 > maxsp[kernel] + 0) maxsp[kernel] = sp
			if (er + 0 > maxerr[kernel] + 0) maxerr[kernel] = er
			if (!(kernel in cnt0)) { order[++nk] = kernel; cnt0[kernel] = 1 }
		}
		END {
			if (k == 0) { print "bench.sh: no BenchmarkSampledCell lines parsed" > "/dev/stderr"; exit 1 }
			printf "{\n" > out
			printf "  \"geometries\": {\n" >> out
			printf "    \"event\": {\"interval\": 400000, \"warmup\": 1000, \"unit\": 8000, \"cell_instrs\": %s},\n", n >> out
			printf "    \"reference\": {\"interval\": 200000, \"warmup\": 1000, \"unit\": 8000, \"cell_instrs\": %s}\n", int(n / 4) >> out
			printf "  },\n" >> out
			printf "  \"cells\": [\n" >> out
			for (i = 1; i <= k; i++) print cells[i] (i < k ? "," : "") >> out
			printf "  ],\n" >> out
			# Cross-kernel headline: a sampled event cell replacing a full
			# reference cell (per-instruction, since the sections use
			# different cell lengths) — the speedup a sweep sees when it
			# adopts both the event kernel and sampling at once.
			nev = n; nref = int(n / 4); nc = 0
			for (j = 1; j <= nrp; j++) {
				p = refp[j]
				if (!(("event/" p) in sampms)) continue
				x = (fullms["reference/" p] / nref) / (sampms["event/" p] / nev)
				cross[++nc] = sprintf("      {\"profile\": \"%s\", \"speedup_x\": %.1f}", p, x)
				clog += log(x)
				if (nc == 1 || x < cmin) cmin = x
				if (nc == 1 || x > cmax) cmax = x
			}
			printf "  \"summary\": {\n" >> out
			for (i = 1; i <= nk; i++) {
				kn = order[i]
				printf "    \"%s\": {\"profiles\": %d, \"geomean_speedup_x\": %.2f, \"min_speedup_x\": %s, \"max_speedup_x\": %s, \"max_cpi_err_pct\": %s}%s\n", kn, cnt[kn], exp(logsum[kn] / cnt[kn]), minsp[kn], maxsp[kn], maxerr[kn], (i < nk || nc > 0 ? "," : "") >> out
			}
			if (nc > 0) {
				printf "    \"sampled_event_vs_full_reference\": {\"geomean_speedup_x\": %.1f, \"min_speedup_x\": %.1f, \"max_speedup_x\": %.1f, \"cells\": [\n", exp(clog / nc), cmin, cmax >> out
				for (i = 1; i <= nc; i++) print cross[i] (i < nc ? "," : "") >> out
				printf "    ]}\n" >> out
			}
			printf "  }\n" >> out
			printf "}\n" >> out
		}
	'
	mv "$tmp" "$sampleout"
	printf '%s\n' "$mraw"
	echo "bench.sh: wrote $sampleout"
fi

# --- Warm-state snapshots ----------------------------------------------------
# The sampled Fig6 sweep with the warm-state snapshot cache on vs off
# (BenchmarkFig6WarmCache, root bench_test.go). Both modes are bit-identical;
# this measures wall-clock only. scripts/bench_gate.sh warm gates speedup_x.
if has_section warm; then
	wraw="$(go test -run '^$' -bench 'BenchmarkFig6WarmCache' -benchtime "${WARM_BENCHTIME:-$benchtime}" -timeout 60m .)"
	tmp="$warmout.tmp"
	printf '%s\n' "$wraw" | awk -v out="$tmp" '
		function metric(unit,    i) {
			for (i = 2; i < NF; i++) if ($(i+1) == unit) return $i
			return ""
		}
		$1 ~ /^BenchmarkFig6WarmCache\/warmoff(-[0-9]+)?$/ { off = metric("ms_per_sweep") }
		$1 ~ /^BenchmarkFig6WarmCache\/warmon(-[0-9]+)?$/  { on = metric("ms_per_sweep") }
		END {
			if (off == "" || on == "") {
				print "bench.sh: warm benchmark lines missing" > "/dev/stderr"; exit 1
			}
			printf "{\n" > out
			printf "  \"fig6_sampled_sweep\": {\"warmoff_ms\": %s, \"warmon_ms\": %s, \"speedup_x\": %.3f}\n", off, on, off / on >> out
			printf "}\n" >> out
		}
	'
	mv "$tmp" "$warmout"
	printf '%s\n' "$wraw"
	echo "bench.sh: wrote $warmout"
fi

# --- Serving layer -----------------------------------------------------------
# Per-cell latency of the m3dd result-cache tiers (BenchmarkCellServe, root
# serve_bench_test.go): cold = every cell simulates, hit = every cell served
# from the warm in-memory cache, coalesce = K concurrent identical sweeps on
# a cold cache with the actual simulation count. Served results are
# bit-identical to simulated ones; this measures wall-clock and the
# coalescing counter. scripts/bench_gate.sh serve gates the cold/hit ratio
# and the coalesced simulation count.
if has_section serve; then
	svraw="$(go test -run '^$' -bench 'BenchmarkCellServe' -benchtime "${SERVE_BENCHTIME:-$benchtime}" -timeout 60m .)"
	tmp="$serveout.tmp"
	printf '%s\n' "$svraw" | awk -v out="$tmp" '
		function metric(unit,    i) {
			for (i = 2; i < NF; i++) if ($(i+1) == unit) return $i
			return ""
		}
		$1 ~ /^BenchmarkCellServe\/cold(-[0-9]+)?$/ { cold = metric("us_per_cell") }
		$1 ~ /^BenchmarkCellServe\/hit(-[0-9]+)?$/  { hit = metric("us_per_cell") }
		$1 ~ /^BenchmarkCellServe\/coalesce(-[0-9]+)?$/ {
			sims = metric("sims"); cells = metric("cells"); sweeps = metric("sweeps")
		}
		END {
			if (cold == "" || hit == "" || sims == "") {
				print "bench.sh: serve benchmark lines missing" > "/dev/stderr"; exit 1
			}
			printf "{\n" > out
			printf "  \"cell_serve\": {\"cold_us_per_cell\": %s, \"hit_us_per_cell\": %s, \"speedup_x\": %.1f},\n", cold, hit, cold / hit >> out
			printf "  \"coalesce\": {\"concurrent_sweeps\": %s, \"cells_per_sweep\": %s, \"simulations\": %s}\n", sweeps, cells, sims >> out
			printf "}\n" >> out
		}
	'
	mv "$tmp" "$serveout"
	printf '%s\n' "$svraw"
	echo "bench.sh: wrote $serveout"
fi
