#!/bin/sh
# resume_chaos.sh — kill-mid-sweep resume proof for the -journal-dir
# checkpoint, at the process level (the in-process variant lives in
# internal/guard/faultinject/resume_chaos_test.go):
#
#   1. run the quick Fig6 sweep uninterrupted and keep its stdout as the
#      reference;
#   2. start the same sweep with -journal-dir, SIGTERM it after a moment
#      (first signal: stop dispatching, drain in-flight cells, flush the
#      journal, exit 130);
#   3. resume from the same journal directory and require the resumed
#      stdout to be byte-identical to the uninterrupted reference.
#
# The interrupted run is allowed to exit 0 (it finished before the signal
# landed — the proof degenerates to a plain full-resume) or 130
# (interrupted); anything else is a failure.
#
# Usage: scripts/resume_chaos.sh [delay_seconds]
# Run from the repository root. Requires only the Go toolchain.
set -eu

delay="${1:-1}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/m3dcli" ./cmd/m3dcli

echo "resume_chaos.sh: reference run (uninterrupted)"
"$workdir/m3dcli" -quick fig6 > "$workdir/ref.txt"

journal="$workdir/journal"

echo "resume_chaos.sh: interrupted run (SIGTERM after ${delay}s)"
set +e
"$workdir/m3dcli" -quick -keep-going -journal-dir "$journal" fig6 \
    > "$workdir/phase1.out" 2> "$workdir/phase1.err" &
pid=$!
sleep "$delay"
kill -TERM "$pid" 2>/dev/null
wait "$pid"
status=$?
set -e
case "$status" in
    0)   echo "resume_chaos.sh: note: sweep finished before the signal landed" ;;
    130) ;;
    *)
        echo "resume_chaos.sh: interrupted run exited $status, want 0 or 130" >&2
        cat "$workdir/phase1.err" >&2
        exit 1
        ;;
esac

echo "resume_chaos.sh: resume run (same -journal-dir)"
"$workdir/m3dcli" -quick -journal-dir "$journal" fig6 \
    > "$workdir/resume.out" 2> "$workdir/resume.err"

if ! diff -u "$workdir/ref.txt" "$workdir/resume.out"; then
    echo "resume_chaos.sh: FAIL — resumed output differs from the uninterrupted run" >&2
    exit 1
fi

# The resume's stderr summary proves the journal was actually consulted.
if ! grep -q '^journal:' "$workdir/resume.err"; then
    echo "resume_chaos.sh: FAIL — resume printed no journal summary" >&2
    cat "$workdir/resume.err" >&2
    exit 1
fi
grep '^journal:' "$workdir/resume.err"
echo "resume_chaos.sh: PASS — resumed sweep is byte-identical to the uninterrupted run"
