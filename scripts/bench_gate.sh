#!/bin/sh
# bench_gate.sh — benchstat-style regression gates over the committed
# BENCH_*.json snapshots.
#
# Modes (first argument; anything else is the legacy core invocation):
#
#   core [current.json] [baseline.json] [tolerance_pct]
#       Compares a freshly measured BENCH_core.json against the committed
#       baseline and fails (exit 1) if any (kernel, profile) cell's mips
#       regressed by more than the tolerance (default 10%). Cells present
#       in only one file are reported but never fail the gate — adding a
#       profile or kernel must not require regenerating the baseline in
#       the same change.
#   sample [current.json] [baseline.json] [tolerance_pct]
#       Compares each kernel's geomean_speedup_x in BENCH_sample.json
#       against the committed baseline; fails on a regression beyond the
#       tolerance (default 10%).
#   warm [current.json] [min_speedup]
#       Reads the sampled-sweep speedup_x from BENCH_warm.json and fails
#       if it is below min_speedup (default 1.5).
#   trace [current.json] [min_replay_ratio] [min_sweep_speedup]
#       Reads BENCH_trace.json and fails if replay is not at least
#       min_replay_ratio x faster than generation per instruction (default
#       2.0), or the shared-cache Fig6 sweep fell below min_sweep_speedup x
#       the per-cell-regeneration sweep (default 0.9 — the cache must never
#       cost a sweep anything).
#   serve [current.json] [min_speedup] [sims_slack_pct]
#       Reads BENCH_serve.json and fails if a warm-cache cell serve is not
#       at least min_speedup x faster than a cold simulation (default 100),
#       or the K concurrent identical sweeps simulated more than
#       cells x (1 + slack/100) cells (default 5% — coalescing must hold).
#
# Baselines default to the committed snapshot (git show HEAD:...).
# Run from the repository root. Requires git and awk.
set -eu

mode="core"
case "${1:-}" in
core | sample | warm | trace | serve)
	mode="$1"
	shift
	;;
esac

from_head() {
	# Prints a temp-file path holding the committed copy of $1.
	f="$(mktemp)"
	git show "HEAD:$1" >"$f"
	printf '%s' "$f"
}

cleanup=""
trap '[ -n "$cleanup" ] && rm -f "$cleanup"' EXIT

if [ "$mode" = "warm" ]; then
	current="${1:-BENCH_warm.json}"
	min="${2:-1.5}"
	[ -f "$current" ] || { echo "bench_gate.sh: $current not found (run scripts/bench.sh first)" >&2; exit 2; }
	awk -v min="$min" -v curfile="$current" '
		BEGIN {
			sp = ""
			while ((getline line < curfile) > 0) {
				if (match(line, /"speedup_x":[ ]*[0-9.eE+-]+/) == 0) continue
				sp = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*/, "", sp)
			}
			close(curfile)
			if (sp == "") { print "bench_gate: no speedup_x in " curfile > "/dev/stderr"; exit 2 }
			if (sp + 0 < min + 0) {
				printf "bench_gate: FAIL — warm sweep speedup %.3fx below the %.2fx floor\n", sp, min
				exit 1
			}
			printf "bench_gate: PASS — warm sweep speedup %.3fx (floor %.2fx)\n", sp, min
		}
	'
	exit 0
fi

if [ "$mode" = "trace" ]; then
	current="${1:-BENCH_trace.json}"
	minratio="${2:-2.0}"
	minsweep="${3:-0.9}"
	[ -f "$current" ] || { echo "bench_gate.sh: $current not found (run scripts/bench.sh first)" >&2; exit 2; }
	awk -v minratio="$minratio" -v minsweep="$minsweep" -v curfile="$current" '
		function grab(line, key,    v) {
			if (match(line, "\"" key "\":[ ]*[0-9.eE+-]+") == 0) return ""
			v = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*/, "", v)
			return v
		}
		BEGIN {
			gen = ""; rep = ""; sweep = ""
			while ((getline line < curfile) > 0) {
				if (line ~ /"generator"/) gen = grab(line, "ns_per_instr")
				if (line ~ /"replayer"/) rep = grab(line, "ns_per_instr")
				if (line ~ /"fig6_sweep"/) sweep = grab(line, "speedup_x")
			}
			close(curfile)
			if (gen == "" || rep == "" || sweep == "") {
				print "bench_gate: generator/replayer/fig6_sweep missing from " curfile > "/dev/stderr"; exit 2
			}
			fails = 0
			ratio = (gen + 0) / (rep + 0)
			if (ratio < minratio + 0) {
				printf "bench_gate: FAIL — replay only %.2fx faster than generation (floor %.2fx)\n", ratio, minratio
				fails++
			} else {
				printf "bench_gate: trace replay %.2fx faster than generation (floor %.2fx)\n", ratio, minratio
			}
			if (sweep + 0 < minsweep + 0) {
				printf "bench_gate: FAIL — shared-cache sweep speedup %.3fx below the %.2fx floor\n", sweep, minsweep
				fails++
			} else {
				printf "bench_gate: trace fig6 sweep speedup %.3fx (floor %.2fx)\n", sweep, minsweep
			}
			if (fails > 0) exit 1
			printf "bench_gate: PASS — trace capture/replay holds its bars\n"
		}
	'
	exit 0
fi

if [ "$mode" = "serve" ]; then
	current="${1:-BENCH_serve.json}"
	min="${2:-100}"
	slack="${3:-5}"
	[ -f "$current" ] || { echo "bench_gate.sh: $current not found (run scripts/bench.sh first)" >&2; exit 2; }
	awk -v min="$min" -v slack="$slack" -v curfile="$current" '
		function grab(line, key,    v) {
			if (match(line, "\"" key "\":[ ]*[0-9.eE+-]+") == 0) return ""
			v = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*/, "", v)
			return v
		}
		BEGIN {
			sp = ""; sims = ""; cells = ""; sweeps = ""
			while ((getline line < curfile) > 0) {
				if (line ~ /"cell_serve"/) sp = grab(line, "speedup_x")
				if (line ~ /"coalesce"/) {
					sims = grab(line, "simulations")
					cells = grab(line, "cells_per_sweep")
					sweeps = grab(line, "concurrent_sweeps")
				}
			}
			close(curfile)
			if (sp == "" || sims == "" || cells == "") {
				print "bench_gate: cell_serve/coalesce missing from " curfile > "/dev/stderr"; exit 2
			}
			fails = 0
			if (sp + 0 < min + 0) {
				printf "bench_gate: FAIL — warm cell serve only %.1fx faster than cold simulation (floor %.0fx)\n", sp, min
				fails++
			} else {
				printf "bench_gate: serve warm/cold speedup %.1fx (floor %.0fx)\n", sp, min
			}
			cap = (cells + 0) * (1 + slack / 100)
			if (sims + 0 > cap) {
				printf "bench_gate: FAIL — %s concurrent sweeps simulated %s cells, cap %.1f (%s cells + %s%% slack)\n", sweeps, sims, cap, cells, slack
				fails++
			} else {
				printf "bench_gate: serve coalescing held — %s sweeps, %s simulations for %s cells (cap %.1f)\n", sweeps, sims, cells, cap
			}
			if (fails > 0) exit 1
			printf "bench_gate: PASS — serving layer holds its bars\n"
		}
	'
	exit 0
fi

if [ "$mode" = "sample" ]; then
	current="${1:-BENCH_sample.json}"
	baseline="${2:-}"
	tol="${3:-10}"
	if [ -z "$baseline" ]; then
		baseline="$(from_head BENCH_sample.json)"
		cleanup="$baseline"
	fi
	[ -f "$current" ] || { echo "bench_gate.sh: $current not found (run scripts/bench.sh first)" >&2; exit 2; }
	awk -v tol="$tol" -v basefile="$baseline" -v curfile="$current" '
		# Summary lines: "<kernel>": {... "geomean_speedup_x": N, ...}
		function parse(line, kv,    k, g) {
			if (match(line, /"[A-Za-z_]+":[ ]*\{.*"geomean_speedup_x":/) == 0) return ""
			k = line; sub(/^[ ]*"/, "", k); sub(/".*/, "", k)
			if (match(line, /"geomean_speedup_x":[ ]*[0-9.eE+-]+/) == 0) return ""
			g = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*/, "", g)
			kv["key"] = k; kv["geo"] = g
			return "ok"
		}
		BEGIN {
			while ((getline line < basefile) > 0)
				if (parse(line, kv) == "ok") base[kv["key"]] = kv["geo"]
			close(basefile)
			fails = 0; cells = 0
			while ((getline line < curfile) > 0) {
				if (parse(line, kv) != "ok") continue
				key = kv["key"]; cur = kv["geo"] + 0
				if (!(key in base)) { printf "bench_gate: sample %-32s NEW (%.2fx, no baseline)\n", key, cur; continue }
				old = base[key] + 0; cells++
				delta = (cur / old - 1) * 100
				verdict = "ok"
				if (delta < -tol) { verdict = "REGRESSED"; fails++ }
				printf "bench_gate: sample %-32s %6.2fx -> %6.2fx  %+6.1f%%  %s\n", key, old, cur, delta, verdict
			}
			close(curfile)
			if (cells == 0) { print "bench_gate: no comparable sample summaries found" > "/dev/stderr"; exit 2 }
			if (fails > 0) { printf "bench_gate: FAIL — %d sample geomean(s) regressed more than %s%%\n", fails, tol; exit 1 }
			printf "bench_gate: PASS — %d sample geomean(s) within %s%% of baseline\n", cells, tol
		}
	'
	exit 0
fi

current="${1:-BENCH_core.json}"
baseline="${2:-}"
tol="${3:-10}"

if [ -z "$baseline" ]; then
	baseline="$(from_head BENCH_core.json)"
	cleanup="$baseline"
fi

[ -f "$current" ] || { echo "bench_gate.sh: $current not found (run scripts/bench.sh first)" >&2; exit 2; }

# Each record sits on one line: {"kernel": "...", "profile": "...", "mips": N, ...}
awk -v tol="$tol" -v basefile="$baseline" -v curfile="$current" '
	function parse(line, kv,    k, p, m) {
		if (match(line, /"kernel":[ ]*"[^"]*"/) == 0) return ""
		k = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*"|"/, "", k)
		if (match(line, /"profile":[ ]*"[^"]*"/) == 0) return ""
		p = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*"|"/, "", p)
		if (match(line, /"mips":[ ]*[0-9.eE+-]+/) == 0) return ""
		m = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*/, "", m)
		kv["key"] = k "/" p; kv["mips"] = m
		return "ok"
	}
	BEGIN {
		while ((getline line < basefile) > 0)
			if (parse(line, kv) == "ok") base[kv["key"]] = kv["mips"]
		close(basefile)
		fails = 0; cells = 0
		while ((getline line < curfile) > 0) {
			if (parse(line, kv) != "ok") continue
			key = kv["key"]; cur = kv["mips"] + 0
			if (!(key in base)) { printf "bench_gate: %-24s NEW (%.3f mips, no baseline)\n", key, cur; continue }
			old = base[key] + 0; seen[key] = 1; cells++
			delta = (cur / old - 1) * 100
			verdict = "ok"
			if (delta < -tol) { verdict = "REGRESSED"; fails++ }
			printf "bench_gate: %-24s %8.3f -> %8.3f mips  %+6.1f%%  %s\n", key, old, cur, delta, verdict
		}
		close(curfile)
		for (key in base)
			if (!(key in seen)) printf "bench_gate: %-24s MISSING from current run (baseline %.3f mips)\n", key, base[key] + 0
		if (cells == 0) { print "bench_gate: no comparable cells found" > "/dev/stderr"; exit 2 }
		if (fails > 0) { printf "bench_gate: FAIL — %d cell(s) regressed more than %s%%\n", fails, tol; exit 1 }
		printf "bench_gate: PASS — %d cell(s) within %s%% of baseline\n", cells, tol
	}
'
