#!/bin/sh
# bench_gate.sh — benchstat-style regression gate over BENCH_core.json.
#
# Compares a freshly measured BENCH_core.json against the committed
# baseline and fails (exit 1) if any (kernel, profile) cell's mips
# regressed by more than the tolerance (default 10%). Cells present in
# only one file are reported but never fail the gate — adding a profile or
# kernel must not require regenerating the baseline in the same change.
#
# Usage: scripts/bench_gate.sh <current.json> [baseline.json] [tolerance_pct]
#   baseline defaults to the committed BENCH_core.json (git show HEAD:...)
#
# Run from the repository root. Requires git and awk.
set -eu

current="${1:-BENCH_core.json}"
baseline="${2:-}"
tol="${3:-10}"

cleanup=""
if [ -z "$baseline" ]; then
	baseline="$(mktemp)"
	cleanup="$baseline"
	git show HEAD:BENCH_core.json >"$baseline"
fi
trap '[ -n "$cleanup" ] && rm -f "$cleanup"' EXIT

[ -f "$current" ] || { echo "bench_gate.sh: $current not found (run scripts/bench.sh first)" >&2; exit 2; }

# Each record sits on one line: {"kernel": "...", "profile": "...", "mips": N, ...}
awk -v tol="$tol" -v basefile="$baseline" -v curfile="$current" '
	function parse(line, kv,    k, p, m) {
		if (match(line, /"kernel":[ ]*"[^"]*"/) == 0) return ""
		k = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*"|"/, "", k)
		if (match(line, /"profile":[ ]*"[^"]*"/) == 0) return ""
		p = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*"|"/, "", p)
		if (match(line, /"mips":[ ]*[0-9.eE+-]+/) == 0) return ""
		m = substr(line, RSTART, RLENGTH); gsub(/.*:[ ]*/, "", m)
		kv["key"] = k "/" p; kv["mips"] = m
		return "ok"
	}
	BEGIN {
		while ((getline line < basefile) > 0)
			if (parse(line, kv) == "ok") base[kv["key"]] = kv["mips"]
		close(basefile)
		fails = 0; cells = 0
		while ((getline line < curfile) > 0) {
			if (parse(line, kv) != "ok") continue
			key = kv["key"]; cur = kv["mips"] + 0
			if (!(key in base)) { printf "bench_gate: %-24s NEW (%.3f mips, no baseline)\n", key, cur; continue }
			old = base[key] + 0; seen[key] = 1; cells++
			delta = (cur / old - 1) * 100
			verdict = "ok"
			if (delta < -tol) { verdict = "REGRESSED"; fails++ }
			printf "bench_gate: %-24s %8.3f -> %8.3f mips  %+6.1f%%  %s\n", key, old, cur, delta, verdict
		}
		close(curfile)
		for (key in base)
			if (!(key in seen)) printf "bench_gate: %-24s MISSING from current run (baseline %.3f mips)\n", key, base[key] + 0
		if (cells == 0) { print "bench_gate: no comparable cells found" > "/dev/stderr"; exit 2 }
		if (fails > 0) { printf "bench_gate: FAIL — %d cell(s) regressed more than %s%%\n", fails, tol; exit 1 }
		printf "bench_gate: PASS — %d cell(s) within %s%% of baseline\n", cells, tol
	}
'
